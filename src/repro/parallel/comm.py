"""Simulated MPI communicator.

mpi4py is not available offline and — per the reproduction notes — real
MPI process overhead would distort I/O microbenchmarks anyway.  The
simulation campaign therefore runs all "ranks" in one process:
:class:`SimComm` provides the communicator surface the rest of the code
programs against (size/rank, reductions, gathers, barriers with a
virtual clock), with per-rank state held in plain Python.

The API deliberately mirrors mpi4py's lowercase object methods so the
code would port to real MPI by swapping the communicator object.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence

import numpy as np

__all__ = ["SimComm", "RankView"]


class SimComm:
    """A simulated communicator over ``size`` ranks.

    Collectives operate on *lists indexed by rank* — the caller holds all
    ranks' values because everything lives in one process.  A virtual
    clock per rank supports barrier-synchronised timing models (used by
    :mod:`repro.iosim.burst`).
    """

    def __init__(self, size: int) -> None:
        if size < 1:
            raise ValueError("communicator size must be >= 1")
        self._size = int(size)
        self._clock = np.zeros(self._size, dtype=np.float64)

    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        return self._size

    def Get_size(self) -> int:  # mpi4py-compatible spelling
        return self._size

    def ranks(self) -> range:
        return range(self._size)

    # ------------------------------------------------------------------
    # virtual time
    # ------------------------------------------------------------------
    def clock(self, rank: int) -> float:
        """Current virtual time of ``rank`` (seconds)."""
        return float(self._clock[rank])

    def clocks(self) -> np.ndarray:
        return self._clock.copy()

    def advance(self, rank: int, seconds: float) -> None:
        """Advance one rank's virtual clock (compute or I/O time)."""
        if seconds < 0:
            raise ValueError("cannot advance clock by negative time")
        self._clock[rank] += seconds

    def advance_all(self, seconds_per_rank: Sequence[float]) -> None:
        arr = np.asarray(seconds_per_rank, dtype=np.float64)
        if arr.shape != (self._size,):
            raise ValueError(f"expected {self._size} per-rank durations")
        if (arr < 0).any():
            raise ValueError("seconds_per_rank entries must be non-negative")
        self._clock += arr

    def barrier(self) -> float:
        """Synchronize all virtual clocks to the max; returns that time."""
        t = float(self._clock.max())
        self._clock[:] = t
        return t

    def reset_clocks(self) -> None:
        self._clock[:] = 0.0

    # ------------------------------------------------------------------
    # collectives (single-process semantics)
    # ------------------------------------------------------------------
    def allreduce_sum(self, values: Sequence[float]) -> float:
        self._check_per_rank(values)
        return float(np.sum(np.asarray(values, dtype=np.float64)))

    def allreduce_max(self, values: Sequence[float]) -> float:
        self._check_per_rank(values)
        return float(np.max(np.asarray(values, dtype=np.float64)))

    def allreduce_min(self, values: Sequence[float]) -> float:
        self._check_per_rank(values)
        return float(np.min(np.asarray(values, dtype=np.float64)))

    def gather(self, values: Sequence[Any]) -> List[Any]:
        """Gather to root — trivially the list itself, copied."""
        self._check_per_rank(values)
        return list(values)

    def bcast(self, value: Any) -> List[Any]:
        """Broadcast — every rank receives the same object reference."""
        return [value] * self._size

    def _check_per_rank(self, values: Sequence[Any]) -> None:
        if len(values) != self._size:
            raise ValueError(
                f"per-rank sequence has length {len(values)}, expected {self._size}"
            )


@dataclass
class RankView:
    """A (comm, rank) pair — what a single MPI process would see."""

    comm: SimComm
    rank: int

    def __post_init__(self) -> None:
        if not (0 <= self.rank < self.comm.size):
            raise ValueError(f"rank {self.rank} out of range for size {self.comm.size}")

    @property
    def size(self) -> int:
        return self.comm.size
