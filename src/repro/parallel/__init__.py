"""Simulated MPI substrate: communicator, ranks and job topology."""

from .comm import RankView, SimComm
from .topology import JobTopology

__all__ = ["RankView", "SimComm", "JobTopology"]
