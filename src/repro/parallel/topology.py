"""Job topology: ranks-per-node layout (Summit ``jsrun`` analogue).

The paper's runs use ``jsrun -n nproc`` on Summit nodes (Table III pairs
nprocs 1–1024 with 1–512 nodes).  The node layout matters for the I/O
timing model because ranks on one node share injection bandwidth to the
parallel filesystem.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

__all__ = ["JobTopology"]


@dataclass(frozen=True)
class JobTopology:
    """Placement of ``nprocs`` ranks over ``nnodes`` nodes, block order.

    Mirrors jsrun's default packing: ranks 0..k-1 on node 0, etc.
    """

    nprocs: int
    nnodes: int

    def __post_init__(self) -> None:
        if self.nprocs < 1 or self.nnodes < 1:
            raise ValueError("nprocs and nnodes must be >= 1")
        if self.nnodes > self.nprocs:
            raise ValueError(
                f"more nodes ({self.nnodes}) than ranks ({self.nprocs})"
            )

    @property
    def ranks_per_node(self) -> int:
        """Max ranks on any node (ceiling of the even split)."""
        return -(-self.nprocs // self.nnodes)

    def node_of_rank(self, rank: int) -> int:
        if not (0 <= rank < self.nprocs):
            raise ValueError(f"rank {rank} out of range")
        return rank // self.ranks_per_node

    def node_map(self) -> np.ndarray:
        """``node_map()[r] == node_of_rank(r)`` as one int64 vector.

        The storage model consumes per-rank node ids on every burst;
        building them vectorized (and caching the result at the call
        site) avoids an O(nprocs) Python loop per timestep.
        """
        return np.arange(self.nprocs, dtype=np.int64) // self.ranks_per_node

    def ranks_on_node(self, node: int) -> List[int]:
        rpn = self.ranks_per_node
        lo = node * rpn
        hi = min(lo + rpn, self.nprocs)
        if lo >= self.nprocs:
            raise ValueError(f"node {node} has no ranks")
        return list(range(lo, hi))

    @staticmethod
    def summit_default(nprocs: int, ranks_per_node: int = 2) -> "JobTopology":
        """Paper-style layout (e.g. 32 tasks on 2 nodes => 16/node; the
        paper's Table III pairs are reproduced by choosing rpn so that
        nnodes = ceil(nprocs / rpn))."""
        nnodes = max(1, -(-nprocs // ranks_per_node))
        return JobTopology(nprocs, nnodes)

    @staticmethod
    def for_machine(nprocs: int, machine=None) -> "JobTopology":
        """Default packing on a registered platform (name or Platform).

        ``None`` resolves to the default machine (summit), whose packing
        matches :meth:`summit_default`.  Node count is clamped to the
        machine's size — on a one-node workstation every rank shares the
        node.
        """
        from ..platform import get_platform  # local: platform imports this module

        return get_platform(machine).default_topology(nprocs)
