"""CFL / level interpolation of ``dataset_growth``.

Appendix A step 4 gives the practitioner's rule: "Apply the proposed
model in Eq. (3) for an initial part_size ... and data_growth ~ 1.0-1.02.
The greater the cfl and number of levels, the greater the data_growth."

:func:`interpolate_growth` formalizes that as bilinear interpolation
over a small table of calibrated (cfl, max_level) -> growth anchors,
clamped to the paper's recommended range.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .growth import GROWTH_RANGE_PAPER

__all__ = ["GrowthTable", "interpolate_growth", "paper_guidance_growth"]


def paper_guidance_growth(cfl: float, max_level: int) -> float:
    """The Appendix-A rule of thumb as a closed form.

    Maps (cfl in [0.3, 0.6], max_level in [2, 4]) linearly onto the
    recommended growth band [1.0, 1.02], monotone in both inputs.
    """
    cfl_t = np.clip((cfl - 0.3) / (0.6 - 0.3), 0.0, 1.0)
    lev_t = np.clip((max_level - 2) / (4 - 2), 0.0, 1.0)
    lo, hi = GROWTH_RANGE_PAPER
    # Equal weight to both drivers; levels dominate slightly per Fig. 6.
    blend = 0.4 * cfl_t + 0.6 * lev_t
    return float(lo + blend * (hi - lo))


@dataclass
class GrowthTable:
    """Calibrated anchors: (cfl, max_level) -> dataset_growth."""

    anchors: Dict[Tuple[float, int], float] = field(default_factory=dict)

    def add(self, cfl: float, max_level: int, growth: float) -> None:
        if growth <= 0:
            raise ValueError("growth must be positive")
        self.anchors[(float(cfl), int(max_level))] = float(growth)

    def __len__(self) -> int:
        return len(self.anchors)

    def cfls(self) -> List[float]:
        return sorted({c for c, _ in self.anchors})

    def levels(self) -> List[int]:
        return sorted({l for _, l in self.anchors})


def _interp_1d(x: float, xs: Sequence[float], ys: Sequence[float]) -> float:
    """Piecewise-linear with edge clamping."""
    return float(np.interp(x, xs, ys))


def interpolate_growth(
    table: GrowthTable, cfl: float, max_level: int, clamp: bool = True
) -> float:
    """Bilinear interpolation of growth from calibrated anchors.

    Interpolates along CFL within each anchored level, then along level.
    Falls back to :func:`paper_guidance_growth` when the table is empty.
    """
    if len(table) == 0:
        return paper_guidance_growth(cfl, max_level)
    levels = table.levels()
    per_level: Dict[int, float] = {}
    for lev in levels:
        pts = sorted(
            (c, g) for (c, l), g in table.anchors.items() if l == lev
        )
        cs = [c for c, _ in pts]
        gs = [g for _, g in pts]
        per_level[lev] = _interp_1d(cfl, cs, gs)
    if len(levels) == 1:
        growth = per_level[levels[0]]
    else:
        growth = _interp_1d(
            float(max_level), [float(l) for l in levels], [per_level[l] for l in levels]
        )
    if clamp:
        lo, hi = GROWTH_RANGE_PAPER
        # Clamp softly: allow up to 1% beyond the paper band (it is a
        # guidance range, not a hard constraint).
        growth = float(np.clip(growth, lo * 0.99, hi * 1.01))
    return growth
