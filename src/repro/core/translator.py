"""Listing 1: translating AMReX-Castro inputs into MACSio arguments.

The functional form the paper proposes::

    jsrun -n nproc macsio
        --interface miftmpl
        --parallel_file_mode MIF nproc
        --num_dumps max_step / plot_int
        --part_size f(amr.n_cell)
        --avg_num_parts 1
        --vars_per_part 1
        --compute_time f(platform, all_inputs)
        --meta_size f(all_inputs)
        --dataset_growth f(amr.n_cell, castro.cfl, amr.max_level, ...)

``part_size`` comes from Eq. (3); ``dataset_growth`` from calibration
(:mod:`repro.core.growth`) or interpolation
(:mod:`repro.core.interpolation`); ``compute_time`` and ``meta_size``
are "runtime" degrees of freedom determined after collecting runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..macsio.miftmpl import json_inflation
from ..macsio.params import MacsioParams, format_argv
from ..sim.inputs import CastroInputs
from .part_size import part_size_model

__all__ = ["ProxyModel", "translate"]


@dataclass(frozen=True)
class ProxyModel:
    """The fitted model parameters for one AMReX configuration.

    ``anchor_output=True`` applies the paper's second correction: the
    Eq.-3 size is "calibrated against the simulated expected output size
    multiplied by a correction factor due to its approximate nature in
    MACSio" — for the miftmpl interface, JSON text inflates each binary
    double, so the nominal request is deflated by that factor to make
    the *realized* output match the Eq.-3 target.
    """

    f: float  # Eq. (3) correction factor
    dataset_growth: float  # calibrated or interpolated
    compute_time: float = 0.0  # seconds between dumps (platform fit)
    meta_size: int = 0  # extra metadata bytes per task
    anchor_output: bool = True

    def __post_init__(self) -> None:
        if self.f <= 0:
            raise ValueError(f"correction factor f must be positive (got {self.f})")
        if self.dataset_growth <= 0:
            raise ValueError("dataset_growth must be positive")


def translate(inputs: CastroInputs, nprocs: int, model: ProxyModel) -> MacsioParams:
    """AMReX inputs + fitted model -> MACSio parameters (Listing 1)."""
    if nprocs < 1:
        raise ValueError("nprocs must be >= 1")
    num_dumps = inputs.n_outputs
    part = part_size_model(model.f, inputs.n_cell[0], inputs.n_cell[1], nprocs)
    if model.anchor_output:
        part /= json_inflation()
    return MacsioParams(
        interface="miftmpl",
        parallel_file_mode="MIF",
        file_count=nprocs,  # N-to-N, the AMReX default pattern
        num_dumps=num_dumps,
        part_size=part,
        avg_num_parts=1.0,
        vars_per_part=1,
        compute_time=model.compute_time,
        meta_size=model.meta_size,
        dataset_growth=model.dataset_growth,
    )


def command_line(inputs: CastroInputs, nprocs: int, model: ProxyModel) -> str:
    """The jsrun command the model would emit for the real MACSio."""
    params = translate(inputs, nprocs, model)
    return f"jsrun -n {nprocs} macsio " + " ".join(format_argv(params, nprocs))


__all__.append("command_line")
