"""End-to-end calibration pipeline (Fig. 1's ``g`` construction).

Chains the full methodology: run (or accept) an AMReX-style Sedov
workload, build the Eq.-1/2 series, anchor ``part_size`` via Eq. (3),
minimize ``dataset_growth`` (Fig. 9), and return a
:class:`~repro.core.translator.ProxyModel` ready to drive MACSio —
optionally verifying the proxy against the source run (Fig. 10).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..iosim.darshan import IOTrace
from ..macsio.dump import MacsioRun, run_macsio
from ..macsio.params import MacsioParams
from ..sim.castro import SimResult
from ..sim.inputs import CastroInputs
from .errors import final_cumulative_error, mean_relative_error, shape_correlation
from .growth import GrowthCalibration, calibrate_growth
from .part_size import fit_correction_factor, part_size_model
from .translator import ProxyModel, translate
from .variables import ModelSeries, build_series

__all__ = ["CalibrationReport", "calibrate_from_result", "verify_proxy"]


@dataclass
class CalibrationReport:
    """Everything the calibration of one case produces."""

    inputs: CastroInputs
    nprocs: int
    series: ModelSeries
    f: float
    growth: GrowthCalibration
    model: ProxyModel
    macsio_params: MacsioParams

    def summary(self) -> str:
        return (
            f"case {self.inputs.n_cell[0]}x{self.inputs.n_cell[1]} "
            f"maxlev={self.inputs.max_level} cfl={self.inputs.cfl} "
            f"np={self.nprocs}: f={self.f:.2f}, "
            f"dataset_growth={self.growth.growth:.6f} "
            f"({self.growth.n_iterations} evals)"
        )


def calibrate_from_result(
    result: SimResult,
    compute_time: float = 0.0,
    include_metadata: bool = True,
    growth_bounds: Tuple[float, float] = (0.95, 1.25),
) -> CalibrationReport:
    """Calibrate the proxy model against one simulated run."""
    inp = result.inputs
    series = build_series(result.trace, inp.ncells_l0, include_metadata)
    f = fit_correction_factor(
        series.y_step, inp.n_cell[0], inp.n_cell[1], result.nprocs, reference="first"
    )
    growth = calibrate_growth(series.y_step, bounds=growth_bounds)
    # meta_size: what the simulation wrote beyond data payloads, per task
    # per dump — a "runtime" parameter in the paper's wording.
    meta_total = result.trace.total_bytes(kind="metadata")
    meta_per_task_dump = int(
        meta_total / max(1, series.n_outputs) / max(1, result.nprocs)
    )
    model = ProxyModel(
        f=f,
        dataset_growth=growth.growth,
        compute_time=compute_time,
        meta_size=meta_per_task_dump,
    )
    params = translate(inp, result.nprocs, model)
    return CalibrationReport(
        inputs=inp,
        nprocs=result.nprocs,
        series=series,
        f=f,
        growth=growth,
        model=model,
        macsio_params=params,
    )


@dataclass(frozen=True)
class ProxyVerification:
    """Proxy-vs-simulation comparison metrics (the Fig. 10 check)."""

    mean_rel_error: float
    final_cumulative_rel_error: float
    shape_corr: float
    macsio_step_bytes: Tuple[float, ...]
    observed_step_bytes: Tuple[float, ...]


def verify_proxy(report: CalibrationReport) -> ProxyVerification:
    """Run the MACSio proxy with the calibrated parameters and compare."""
    run = run_macsio(report.macsio_params, report.nprocs)
    model_steps = np.asarray(run.bytes_per_dump, dtype=np.float64)
    obs = report.series.y_step
    n = min(len(model_steps), len(obs))
    model_steps, obs = model_steps[:n], obs[:n]
    return ProxyVerification(
        mean_rel_error=mean_relative_error(model_steps, obs),
        final_cumulative_rel_error=final_cumulative_error(model_steps, obs),
        shape_corr=shape_correlation(model_steps, obs),
        macsio_step_bytes=tuple(model_steps),
        observed_step_bytes=tuple(obs),
    )


__all__.append("ProxyVerification")
