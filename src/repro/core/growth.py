"""``dataset_growth`` calibration (the Fig. 9 minimization).

With the initial data size pinned by Eq. (3), matching MACSio to a
simulation becomes "a single parameter optimization problem": find the
growth factor ``g`` such that

    model_k(g) = base_bytes * g^k,   k = 0..K-1

best fits the observed per-dump sizes.  The paper converges to
``data_growth = 1.013075`` for case4 and reports the useful range
1.0–1.02.  We minimize relative least squares with a bracketed scalar
search, keeping every iterate so the convergence plot (Fig. 9) can be
regenerated.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np
from scipy.optimize import minimize_scalar

__all__ = ["GrowthCalibration", "calibrate_growth", "growth_series", "GROWTH_RANGE_PAPER"]

GROWTH_RANGE_PAPER: Tuple[float, float] = (1.0, 1.02)


def growth_series(base_bytes: float, growth: float, n_dumps: int) -> np.ndarray:
    """Model per-dump bytes: ``base_bytes * growth^k``."""
    if n_dumps < 1:
        raise ValueError("n_dumps must be >= 1")
    if base_bytes <= 0:
        raise ValueError("base_bytes must be positive")
    if growth <= 0:
        raise ValueError("growth must be positive")
    return base_bytes * growth ** np.arange(n_dumps, dtype=np.float64)


@dataclass
class GrowthCalibration:
    """Result of the single-parameter minimization, with trace."""

    growth: float
    base_bytes: float
    objective: float
    iterations: List[Tuple[float, float]] = field(default_factory=list)
    # Each entry: (growth value tried, objective value).

    @property
    def n_iterations(self) -> int:
        return len(self.iterations)

    def convergence_curves(self, n_dumps: int) -> List[np.ndarray]:
        """Model series of selected iterates — the curves of Fig. 9.

        Returns at most 8 curves sampled along the convergence path,
        ending with the final solution.
        """
        if not self.iterations:
            return [growth_series(self.base_bytes, self.growth, n_dumps)]
        idx = np.unique(
            np.linspace(0, len(self.iterations) - 1, min(8, len(self.iterations))).astype(int)
        )
        curves = [
            growth_series(self.base_bytes, self.iterations[i][0], n_dumps) for i in idx
        ]
        curves.append(growth_series(self.base_bytes, self.growth, n_dumps))
        return curves


def calibrate_growth(
    observed_step_bytes: Sequence[float],
    base_bytes: Optional[float] = None,
    bounds: Tuple[float, float] = (0.95, 1.25),
    weight: str = "relative",
) -> GrowthCalibration:
    """Fit ``g`` to observed per-dump sizes with ``base`` fixed.

    Parameters
    ----------
    observed_step_bytes:
        Bytes of each dump, in dump order.
    base_bytes:
        The fixed initial size (Eq.-3 anchor); defaults to the first
        observed dump, the paper's convention.
    bounds:
        Search bracket for ``g``.
    weight:
        ``"relative"`` minimizes sum((model/obs - 1)^2) (scale-free,
        what a practitioner matching curves by eye does);
        ``"absolute"`` minimizes sum((model - obs)^2).
    """
    obs = np.asarray(observed_step_bytes, dtype=np.float64)
    if obs.size < 2:
        raise ValueError("need at least two dumps to calibrate growth")
    if (obs <= 0).any():
        raise ValueError("dump sizes must be positive")
    base = float(base_bytes) if base_bytes is not None else float(obs[0])
    k = np.arange(obs.size, dtype=np.float64)
    trace: List[Tuple[float, float]] = []

    if weight == "relative":
        def objective(g: float) -> float:
            model = base * g**k
            val = float(np.sum((model / obs - 1.0) ** 2))
            trace.append((g, val))
            return val
    elif weight == "absolute":
        def objective(g: float) -> float:
            model = base * g**k
            val = float(np.sum((model - obs) ** 2))
            trace.append((g, val))
            return val
    else:
        raise ValueError(f"unknown weight {weight!r}")

    res = minimize_scalar(objective, bounds=bounds, method="bounded",
                          options={"xatol": 1e-7})
    return GrowthCalibration(
        growth=float(res.x),
        base_bytes=base,
        objective=float(res.fun),
        iterations=trace,
    )
