"""Zero-run I/O size prediction ("predictive I/O sizes", Conclusions).

The paper's closing motivation: "this simplified proxy kernel-based
approach can be a good initial candidate for follow up studies on
predictive I/O sizes ... a powerful predictive tool for autotuning".
This module composes the pieces into that tool: given *only* an AMReX
input configuration (no simulation run), predict

- the per-dump and cumulative output-byte series,
- the MACSio parameters that would replay it, and
- burst times on a storage model,

using Eq. (3) for the anchor and a growth source (calibrated table,
fitted regression, or the Appendix-A guidance rule).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from ..iosim.storage import StorageModel
from ..macsio.miftmpl import json_inflation
from ..parallel.topology import JobTopology
from ..platform import get_platform
from ..sim.inputs import CastroInputs
from .growth import growth_series
from .interpolation import GrowthTable, interpolate_growth, paper_guidance_growth
from .part_size import part_size_model
from .regression import CaseFeatures, LinearModel
from .translator import ProxyModel, translate

__all__ = ["SizePrediction", "predict_sizes", "burst_series", "DEFAULT_F"]

# Midpoint of the paper's empirical band — the zero-information prior.
DEFAULT_F = 24.0


def burst_series(
    storage: StorageModel,
    step_bytes: np.ndarray,
    nprocs: int,
    node_map: np.ndarray,
) -> np.ndarray:
    """Per-dump burst times of an even N-to-N split, one dump at a time.

    Each dump's total is divided evenly over the ranks (truncating, the
    paper's even-split assumption) and pushed through
    :meth:`StorageModel.burst_time` against the given node layout.
    Shared by :func:`predict_sizes` and the prediction service's
    fallback path, so both produce the same floats by construction.
    """
    per_rank = np.empty(nprocs, dtype=np.int64)
    bursts = []
    for k in range(len(step_bytes)):
        per_rank[:] = int(step_bytes[k] / nprocs)
        bursts.append(storage.burst_time(per_rank, node_map))
    return np.asarray(bursts)


@dataclass(frozen=True)
class SizePrediction:
    """Predicted I/O of one configuration, with provenance."""

    inputs: CastroInputs
    nprocs: int
    f: float
    growth: float
    growth_source: str  # "table" | "regression" | "guidance"
    step_bytes: np.ndarray
    cumulative_bytes: np.ndarray
    burst_seconds: Optional[np.ndarray] = None
    machine: Optional[str] = None  # set when a platform drove the timing

    @property
    def total_bytes(self) -> float:
        return float(self.cumulative_bytes[-1])

    def macsio_params(self):
        """The Listing-1 parameters that replay this prediction."""
        model = ProxyModel(f=self.f, dataset_growth=self.growth)
        return translate(self.inputs, self.nprocs, model)

    def summary(self) -> str:
        on = f" on {self.machine}" if self.machine else ""
        return (
            f"predicted {self.inputs.n_cell[0]}x{self.inputs.n_cell[1]} "
            f"maxlev={self.inputs.max_level} cfl={self.inputs.cfl} "
            f"np={self.nprocs}{on}: total {self.total_bytes:.4g} B over "
            f"{len(self.step_bytes)} dumps "
            f"(f={self.f:.2f}, g={self.growth:.5f} from {self.growth_source})"
        )


def predict_sizes(
    inputs: CastroInputs,
    nprocs: int,
    f: float = DEFAULT_F,
    growth_table: Optional[GrowthTable] = None,
    regression: Optional[LinearModel] = None,
    storage: Optional[StorageModel] = None,
    topology: Optional[JobTopology] = None,
    platform=None,
) -> SizePrediction:
    """Predict the output-size series of an unseen configuration.

    Growth resolution order: an explicit calibrated ``growth_table``
    wins, then a fitted ``regression`` model, then the paper's
    Appendix-A guidance rule.  ``f`` defaults to the band midpoint;
    pass a fitted value when one is available for the mesh family.

    ``platform`` (a registry name or :class:`~repro.platform.Platform`)
    is the zero-run machine axis: it supplies the storage model
    (deterministic, ``variability=0`` so machines compare apples to
    apples) and the default rank packing, so the same configuration can
    be predicted on every registered machine without a single run.
    Explicit ``storage``/``topology`` arguments still win.
    """
    if nprocs < 1:
        raise ValueError("nprocs must be >= 1")
    plat = get_platform(platform) if platform is not None else None
    machine = None
    if storage is None and plat is not None:
        storage = plat.storage_model(variability=0.0)
        machine = plat.name  # label only timings the platform produced
    if growth_table is not None and len(growth_table) > 0:
        growth = interpolate_growth(growth_table, inputs.cfl, inputs.max_level)
        source = "table"
    elif regression is not None:
        growth = regression.predict(
            CaseFeatures(inputs.cfl, inputs.max_level, inputs.ncells_l0, nprocs)
        )
        source = "regression"
    else:
        growth = paper_guidance_growth(inputs.cfl, inputs.max_level + 1)
        source = "guidance"
    if growth <= 0:
        raise ValueError(f"growth source produced non-positive growth {growth}")
    n_dumps = inputs.n_outputs
    base = part_size_model(f, inputs.n_cell[0], inputs.n_cell[1], nprocs) * nprocs
    steps = growth_series(base, growth, n_dumps)
    prediction_burst = None
    if storage is not None:
        if topology is not None:
            topo = topology
        elif plat is not None:
            topo = plat.default_topology(nprocs)
        else:
            topo = JobTopology.summit_default(nprocs)
        nodes = topo.node_map()  # one build, reused across all dumps
        prediction_burst = burst_series(storage, steps, nprocs, nodes)
    return SizePrediction(
        inputs=inputs,
        nprocs=nprocs,
        f=f,
        growth=float(growth),
        growth_source=source,
        step_bytes=steps,
        cumulative_bytes=np.cumsum(steps),
        burst_seconds=prediction_burst,
        machine=machine,
    )
