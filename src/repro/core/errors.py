"""Model-vs-simulation error metrics.

The paper judges the proxy "close enough" by visual curve comparison
(Figs. 10, 11); these metrics quantify the same comparisons so the
benchmark harness can assert shapes programmatically.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

__all__ = [
    "relative_errors",
    "max_relative_error",
    "mean_relative_error",
    "final_cumulative_error",
    "shape_correlation",
]


def _pair(model: Sequence[float], observed: Sequence[float]) -> Tuple[np.ndarray, np.ndarray]:
    m = np.asarray(model, dtype=np.float64)
    o = np.asarray(observed, dtype=np.float64)
    if m.shape != o.shape:
        raise ValueError(f"length mismatch: model {m.shape} vs observed {o.shape}")
    if (o <= 0).any():
        raise ValueError("observed values must be positive for relative errors")
    return m, o


def relative_errors(model: Sequence[float], observed: Sequence[float]) -> np.ndarray:
    """Pointwise ``|model - observed| / observed``."""
    m, o = _pair(model, observed)
    return np.abs(m - o) / o


def max_relative_error(model: Sequence[float], observed: Sequence[float]) -> float:
    """Worst-case per-point relative error of ``model`` vs ``observed``."""
    return float(relative_errors(model, observed).max())


def mean_relative_error(model: Sequence[float], observed: Sequence[float]) -> float:
    """Mean per-point relative error of ``model`` vs ``observed``."""
    return float(relative_errors(model, observed).mean())


def final_cumulative_error(model: Sequence[float], observed: Sequence[float]) -> float:
    """Relative error of the cumulative totals — the headline number."""
    m, o = _pair(model, observed)
    return float(abs(m.sum() - o.sum()) / o.sum())


def shape_correlation(model: Sequence[float], observed: Sequence[float]) -> float:
    """Pearson correlation of the two series (1.0 = same shape).

    Constant series (zero variance) correlate perfectly with other
    constant series and are otherwise undefined; return 1.0 / 0.0
    accordingly rather than NaN.
    """
    m, o = _pair(model, observed)
    sm, so = m.std(), o.std()
    if sm == 0.0 or so == 0.0:
        return 1.0 if sm == so else 0.0
    return float(np.corrcoef(m, o)[0, 1])
