"""Equation (3): the ``part_size`` model and its correction factor ``f``.

    part_size = f * 8 * Nx * Ny / nprocs   [bytes],   f ~ 23 - 25

``8`` is the double-precision width; ``f`` absorbs the number of output
fields (``derive_plot_vars=ALL`` carries ~24 of them) plus format
overheads.  The paper reports the empirical range 23–25 for the Sedov
cases and pins ``1550000 ~ 23.65 * 512^2 * 8 / 32`` for case4.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np

__all__ = ["part_size_model", "fit_correction_factor", "F_RANGE_PAPER", "CASE4_PART_SIZE"]

# The paper's reported range for f and its pinned case4 value.
F_RANGE_PAPER: Tuple[float, float] = (23.0, 25.0)
CASE4_PART_SIZE = 1_550_000  # ~ 23.65 * 512^2 * 8 / 32


def part_size_model(f: float, nx: int, ny: int, nprocs: int) -> float:
    """Eq. (3): per-task part size in bytes."""
    if nprocs < 1:
        raise ValueError("nprocs must be >= 1")
    if nx < 1 or ny < 1:
        raise ValueError(f"mesh dimensions must be positive (nx={nx}, ny={ny})")
    if f <= 0:
        raise ValueError(f"correction factor f must be positive (got {f})")
    return f * 8.0 * nx * ny / nprocs


def fit_correction_factor(
    observed_step_bytes: Sequence[float],
    nx: int,
    ny: int,
    nprocs: int,
    reference: str = "first",
) -> float:
    """Invert Eq. (3) from observed per-dump totals.

    ``part_size * nprocs`` should match a per-dump total; the paper
    anchors the initial data size on the early (pre-growth) dumps, so
    ``reference='first'`` uses dump 0 and ``'median'``/``'mean'`` use
    robust aggregates across all dumps.
    """
    obs = np.asarray(observed_step_bytes, dtype=np.float64)
    if obs.size == 0:
        raise ValueError("no observed dump sizes")
    if (obs < 0).any():
        raise ValueError("dump sizes cannot be negative")
    if reference == "first":
        total = float(obs[0])
    elif reference == "median":
        total = float(np.median(obs))
    elif reference == "mean":
        total = float(obs.mean())
    else:
        raise ValueError(f"unknown reference {reference!r}")
    per_task = total / nprocs
    return per_task / (8.0 * nx * ny / nprocs)
