"""Linear regression over calibrated cases (the paper's "simple
analytical model").

The paper applies linear regression to translate AMReX inputs into
MACSio parameters.  Given a set of calibrated runs — each a row of
features (cfl, max_level, log10 ncells, log10 nprocs) with fitted
targets (f, dataset_growth) — ordinary least squares yields a predictor
for *unseen* configurations, the "predictive I/O sizes" follow-up the
conclusions sketch.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

__all__ = ["CaseFeatures", "LinearModel", "fit_linear_model", "design_row"]


@dataclass(frozen=True)
class CaseFeatures:
    """Input features of one calibrated case."""

    cfl: float
    max_level: int
    ncells: int  # Nx * Ny at L0
    nprocs: int

    def __post_init__(self) -> None:
        if self.ncells < 1 or self.nprocs < 1:
            raise ValueError("ncells and nprocs must be positive")


def design_row(c: CaseFeatures) -> np.ndarray:
    """Feature vector: [1, cfl, max_level, log10(ncells), log10(nprocs)]."""
    return np.array(
        [1.0, c.cfl, float(c.max_level), np.log10(c.ncells), np.log10(c.nprocs)],
        dtype=np.float64,
    )


FEATURE_NAMES = ("intercept", "cfl", "max_level", "log10_ncells", "log10_nprocs")


@dataclass
class LinearModel:
    """OLS fit of one target over :func:`design_row` features."""

    coef: np.ndarray
    target_name: str
    residual_rms: float = 0.0

    def predict(self, c: CaseFeatures) -> float:
        return float(design_row(c) @ self.coef)

    def summary(self) -> str:
        terms = ", ".join(
            f"{name}={v:+.5g}" for name, v in zip(FEATURE_NAMES, self.coef)
        )
        return f"{self.target_name} ~ {terms} (rms={self.residual_rms:.3g})"


def fit_linear_model(
    cases: Sequence[CaseFeatures],
    targets: Sequence[float],
    target_name: str = "dataset_growth",
) -> LinearModel:
    """Least-squares fit of ``target ~ design_row(features)``.

    With fewer cases than features the fit falls back to the
    minimum-norm solution (lstsq handles rank deficiency).
    """
    if len(cases) != len(targets):
        raise ValueError("cases and targets must have equal length")
    if len(cases) < 2:
        raise ValueError("need at least two cases to regress")
    X = np.stack([design_row(c) for c in cases])
    y = np.asarray(targets, dtype=np.float64)
    coef, _res, _rank, _sv = np.linalg.lstsq(X, y, rcond=None)
    pred = X @ coef
    rms = float(np.sqrt(np.mean((pred - y) ** 2)))
    return LinearModel(coef=coef, target_name=target_name, residual_rms=rms)
