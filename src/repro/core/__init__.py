"""The paper's contribution: the AMReX -> MACSio proxy I/O model.

Eqs. (1)–(2) series construction, the Eq. (3) ``part_size`` model with
correction factor ``f``, single-parameter ``dataset_growth`` calibration
(Fig. 9), the Listing-1 translator, linear regression across cases, and
CFL/level interpolation guidance (Appendix A).
"""

from .calibration import (
    CalibrationReport,
    ProxyVerification,
    calibrate_from_result,
    verify_proxy,
)
from .errors import (
    final_cumulative_error,
    max_relative_error,
    mean_relative_error,
    relative_errors,
    shape_correlation,
)
from .growth import (
    GROWTH_RANGE_PAPER,
    GrowthCalibration,
    calibrate_growth,
    growth_series,
)
from .interpolation import GrowthTable, interpolate_growth, paper_guidance_growth
from .predictor import DEFAULT_F, SizePrediction, burst_series, predict_sizes
from .part_size import (
    CASE4_PART_SIZE,
    F_RANGE_PAPER,
    fit_correction_factor,
    part_size_model,
)
from .regression import CaseFeatures, LinearModel, design_row, fit_linear_model
from .translator import ProxyModel, command_line, translate
from .variables import ModelSeries, build_series, per_level_series, per_task_series

__all__ = [
    "DEFAULT_F",
    "SizePrediction",
    "burst_series",
    "predict_sizes",
    "CalibrationReport",
    "ProxyVerification",
    "calibrate_from_result",
    "verify_proxy",
    "final_cumulative_error",
    "max_relative_error",
    "mean_relative_error",
    "relative_errors",
    "shape_correlation",
    "GROWTH_RANGE_PAPER",
    "GrowthCalibration",
    "calibrate_growth",
    "growth_series",
    "GrowthTable",
    "interpolate_growth",
    "paper_guidance_growth",
    "CASE4_PART_SIZE",
    "F_RANGE_PAPER",
    "fit_correction_factor",
    "part_size_model",
    "CaseFeatures",
    "LinearModel",
    "design_row",
    "fit_linear_model",
    "ProxyModel",
    "command_line",
    "translate",
    "ModelSeries",
    "build_series",
    "per_level_series",
    "per_task_series",
]
