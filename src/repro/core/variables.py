"""The model variables of Eqs. (1) and (2).

The paper expresses every run as series over a *cumulative* independent
variable::

    x = output_counter * ncells          (Eq. 1)
    y = data_output_i,  i = (time step, level, task)   (Eq. 2)

with ``output_counter = 1..n_outputs`` and ``ncells`` the base-level
(L0) cell count.  This module builds those series from an
:class:`~repro.iosim.darshan.IOTrace` at each of the three hierarchy
granularities the paper analyzes (per-step, per-level, per-task).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..iosim.darshan import IOTrace

__all__ = ["ModelSeries", "build_series", "per_level_series", "per_task_series"]


@dataclass(frozen=True)
class ModelSeries:
    """One (x, y) curve: cumulative cells vs cumulative bytes.

    ``steps[k]`` is the simulation step of output event ``k``;
    ``x[k] = (k + 1) * ncells`` (Eq. 1);
    ``y_step[k]`` is the bytes of dump ``k`` alone;
    ``y[k]`` is the cumulative bytes through dump ``k``.
    """

    ncells: int
    steps: np.ndarray
    x: np.ndarray
    y_step: np.ndarray
    y: np.ndarray

    def __post_init__(self) -> None:
        n = len(self.steps)
        for name in ("x", "y_step", "y"):
            if len(getattr(self, name)) != n:
                raise ValueError(f"series component {name} has wrong length")

    @property
    def n_outputs(self) -> int:
        return len(self.steps)

    def final_cumulative(self) -> float:
        return float(self.y[-1]) if len(self.y) else 0.0


def _series_from_arrays(ncells: int, steps: np.ndarray, y_step: np.ndarray) -> ModelSeries:
    y_step = y_step.astype(np.float64)
    x = (np.arange(len(steps), dtype=np.float64) + 1.0) * float(ncells)
    return ModelSeries(ncells=ncells, steps=steps.astype(np.int64),
                       x=x, y_step=y_step, y=np.cumsum(y_step))


def _metadata_mask(cols, include_metadata: bool) -> np.ndarray:
    """True where the record should be counted."""
    if include_metadata:
        return np.ones(len(cols.step), dtype=bool)
    return ~cols.kind_is("metadata")


def build_series(trace: IOTrace, ncells: int, include_metadata: bool = True) -> ModelSeries:
    """Per-step series over all levels and tasks (the Fig. 5/6 curves)."""
    cols = trace.columns()
    mask = _metadata_mask(cols, include_metadata)
    step, nb = cols.step[mask], cols.nbytes[mask]
    if len(step) == 0:
        raise ValueError("trace contains no records")
    uniq, inverse = np.unique(step, return_inverse=True)
    sums = np.zeros(len(uniq), dtype=np.int64)
    np.add.at(sums, inverse, nb)
    return _series_from_arrays(ncells, uniq, sums)


def per_level_series(
    trace: IOTrace, ncells: int, include_metadata: bool = False
) -> Dict[int, ModelSeries]:
    """One series per AMR level (the Fig. 7 decomposition)."""
    cols = trace.columns()
    all_steps = np.unique(cols.step)
    mask = (cols.level >= 0) & _metadata_mask(cols, include_metadata)
    lev, step, nb = cols.level[mask], cols.step[mask], cols.nbytes[mask]
    step_index = np.searchsorted(all_steps, step)
    out: Dict[int, ModelSeries] = {}
    for l in np.unique(lev):
        sel = lev == l
        # A level absent at some step contributed zero bytes then.
        sums = np.zeros(len(all_steps), dtype=np.int64)
        np.add.at(sums, step_index[sel], nb[sel])
        out[int(l)] = _series_from_arrays(ncells, all_steps, sums)
    return out


def per_task_series(
    trace: IOTrace, nprocs: int, level: Optional[int] = None
) -> Dict[int, np.ndarray]:
    """step -> per-task byte vector (the Fig. 8 panels).

    Only data records count (metadata is written by rank 0 and would
    skew the load-balance view).
    """
    cols = trace.columns()
    all_steps = np.unique(cols.step)
    mask = cols.kind_is("data")
    if level is not None:
        mask &= cols.level == level
    cols.check_rank_bound(nprocs, mask)
    step, rank, nb = cols.step[mask], cols.rank[mask], cols.nbytes[mask]
    mat = np.zeros((len(all_steps), nprocs), dtype=np.int64)
    np.add.at(mat, (np.searchsorted(all_steps, step), rank), nb)
    return {int(s): mat[i] for i, s in enumerate(all_steps)}
