"""The model variables of Eqs. (1) and (2).

The paper expresses every run as series over a *cumulative* independent
variable::

    x = output_counter * ncells          (Eq. 1)
    y = data_output_i,  i = (time step, level, task)   (Eq. 2)

with ``output_counter = 1..n_outputs`` and ``ncells`` the base-level
(L0) cell count.  This module builds those series from an
:class:`~repro.iosim.darshan.IOTrace` at each of the three hierarchy
granularities the paper analyzes (per-step, per-level, per-task).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..iosim.darshan import IOTrace

__all__ = ["ModelSeries", "build_series", "per_level_series", "per_task_series"]


@dataclass(frozen=True)
class ModelSeries:
    """One (x, y) curve: cumulative cells vs cumulative bytes.

    ``steps[k]`` is the simulation step of output event ``k``;
    ``x[k] = (k + 1) * ncells`` (Eq. 1);
    ``y_step[k]`` is the bytes of dump ``k`` alone;
    ``y[k]`` is the cumulative bytes through dump ``k``.
    """

    ncells: int
    steps: np.ndarray
    x: np.ndarray
    y_step: np.ndarray
    y: np.ndarray

    def __post_init__(self) -> None:
        n = len(self.steps)
        for name in ("x", "y_step", "y"):
            if len(getattr(self, name)) != n:
                raise ValueError(f"series component {name} has wrong length")

    @property
    def n_outputs(self) -> int:
        return len(self.steps)

    def final_cumulative(self) -> float:
        return float(self.y[-1]) if len(self.y) else 0.0


def _series_from_per_step(ncells: int, per_step: Dict[int, int]) -> ModelSeries:
    steps = np.array(sorted(per_step), dtype=np.int64)
    y_step = np.array([per_step[s] for s in steps], dtype=np.float64)
    x = (np.arange(len(steps), dtype=np.float64) + 1.0) * float(ncells)
    return ModelSeries(ncells=ncells, steps=steps, x=x, y_step=y_step, y=np.cumsum(y_step))


def build_series(trace: IOTrace, ncells: int, include_metadata: bool = True) -> ModelSeries:
    """Per-step series over all levels and tasks (the Fig. 5/6 curves)."""
    per_step: Dict[int, int] = {}
    for r in trace:
        if not include_metadata and r.kind == "metadata":
            continue
        per_step[r.step] = per_step.get(r.step, 0) + r.nbytes
    if not per_step:
        raise ValueError("trace contains no records")
    return _series_from_per_step(ncells, per_step)


def per_level_series(
    trace: IOTrace, ncells: int, include_metadata: bool = False
) -> Dict[int, ModelSeries]:
    """One series per AMR level (the Fig. 7 decomposition)."""
    per: Dict[int, Dict[int, int]] = {}
    all_steps = sorted({r.step for r in trace})
    for r in trace:
        if r.level < 0:
            continue
        if not include_metadata and r.kind == "metadata":
            continue
        per.setdefault(r.level, {})
        per[r.level][r.step] = per[r.level].get(r.step, 0) + r.nbytes
    out: Dict[int, ModelSeries] = {}
    for lev, table in sorted(per.items()):
        # A level absent at some step contributed zero bytes then.
        full = {s: table.get(s, 0) for s in all_steps}
        out[lev] = _series_from_per_step(ncells, full)
    return out


def per_task_series(
    trace: IOTrace, nprocs: int, level: Optional[int] = None
) -> Dict[int, np.ndarray]:
    """step -> per-task byte vector (the Fig. 8 panels).

    Only data records count (metadata is written by rank 0 and would
    skew the load-balance view).
    """
    out: Dict[int, np.ndarray] = {}
    for step in sorted({r.step for r in trace}):
        vec = np.zeros(nprocs, dtype=np.int64)
        for r in trace:
            if r.step != step or r.kind != "data":
                continue
            if level is not None and r.level != level:
                continue
            vec[r.rank] += r.nbytes
        out[step] = vec
    return out
