"""repro — reproduction of "Modeling pre-Exascale AMR Parallel I/O
Workloads via Proxy Applications" (Godoy, Delozier, Watson; IPDPSW 2022).

Subpackages
-----------
``repro.core``
    The paper's contribution: Eq. (1)-(3) variables, ``dataset_growth``
    calibration, the AMReX->MACSio translator, regression/interpolation.
``repro.amr`` / ``repro.hydro`` / ``repro.sim``
    The AMReX/Castro substrate: block-structured AMR, the 2-D Sedov
    compressible solver, and the simulation driver.
``repro.workload``
    Analytic Sedov workload generation for paper-scale meshes.
``repro.plotfile`` / ``repro.macsio``
    The two I/O producers: Castro plotfiles (Fig. 2 layout) and the
    MACSio proxy (Fig. 3 layout).
``repro.parallel`` / ``repro.iosim``
    Simulated MPI and the storage/trace substrate (GPFS, Lustre, and
    burst-buffer timing models).
``repro.platform``
    The machine registry: Platform specs (summit, frontier,
    burst-buffer, workstation) dispatching the storage-model hierarchy.
``repro.campaign`` / ``repro.analysis``
    The 47-run study machinery and the figure/table analysis layer.
``repro.faults``
    Deterministic chaos: seeded env-gated fault injection and the
    retry/backoff :class:`~repro.faults.FaultPolicy` behind the
    executor's resilience guarantees.
``repro.service``
    Prediction-as-a-service: the batched query engine over the
    predictor and the result store (``repro-serve``).
"""

__version__ = "1.1.0"

from . import (
    amr,
    analysis,
    campaign,
    core,
    faults,
    hydro,
    iosim,
    macsio,
    parallel,
    platform,
    plotfile,
    service,
    sim,
    workload,
)

__all__ = [
    "amr",
    "analysis",
    "campaign",
    "core",
    "faults",
    "hydro",
    "iosim",
    "macsio",
    "parallel",
    "platform",
    "plotfile",
    "service",
    "sim",
    "workload",
    "__version__",
]
