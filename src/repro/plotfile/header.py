"""Top-level plotfile ``Header`` and ``job_info`` metadata files.

The ``Header`` text format follows AMReX's ``HyperCLaw-V1.1`` layout:
variable names, problem geometry, per-level domains and grid boxes, and
the relative path of each level's ``Cell`` dataset.  ``job_info`` is the
free-form provenance block Castro adds at the plotfile root (visible in
Fig. 2).

The per-box physical-bounds block — two lines per grid, the bulk of the
``Header`` at paper scale — depends only on ``(geometry, boxarray)``:
it is rendered once from vectorized corner arrays and cached per layout,
so repeat dumps of an unchanged hierarchy reuse the rendered text.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from ..amr.boxarray import BoxArray
from ..amr.geometry import Geometry

__all__ = ["build_header_text", "build_job_info_text", "PLOTFILE_VERSION"]

PLOTFILE_VERSION = "HyperCLaw-V1.1"

# (BoxArray.token, Geometry) -> rendered per-box physical-bounds block.
_GRID_BLOCK_CACHE: Dict[Tuple[int, Geometry], str] = {}
_GRID_BLOCK_CACHE_MAX = 256


def _grid_block(geom: Geometry, ba: BoxArray) -> str:
    """The two ``xlo xhi`` / ``ylo yhi`` lines per box of one level.

    Vectorized over the cached corner arrays; bit-identical to calling
    ``geom.physical_box`` per box (same float expressions, elementwise).
    """
    key = (ba.token, geom)
    block = _GRID_BLOCK_CACHE.get(key)
    if block is None:
        dx, dy = geom.cell_size
        los, his = ba.corners()
        xlo = (geom.prob_lo[0] + los[:, 0] * dx).tolist()
        ylo = (geom.prob_lo[1] + los[:, 1] * dy).tolist()
        xhi = (geom.prob_lo[0] + (his[:, 0] + 1) * dx).tolist()
        yhi = (geom.prob_lo[1] + (his[:, 1] + 1) * dy).tolist()
        block = "\n".join(
            f"{a} {b}\n{c} {d}" for a, b, c, d in zip(xlo, xhi, ylo, yhi)
        )
        if len(_GRID_BLOCK_CACHE) >= _GRID_BLOCK_CACHE_MAX:
            _GRID_BLOCK_CACHE.clear()
        _GRID_BLOCK_CACHE[key] = block
    return block


def build_header_text(
    var_names: Sequence[str],
    geoms: Sequence[Geometry],
    boxarrays: Sequence[BoxArray],
    time: float,
    step: int,
    ref_ratio: int,
) -> str:
    """Render the plotfile ``Header`` for a level hierarchy.

    Parameters
    ----------
    var_names:
        Field names in component order.
    geoms / boxarrays:
        One per level, coarsest first.
    time / step:
        Simulation time and step index of this dump.
    ref_ratio:
        Uniform refinement ratio between levels.
    """
    if len(geoms) != len(boxarrays):
        raise ValueError("geoms and boxarrays must have equal length")
    nlev = len(geoms)
    finest = nlev - 1
    g0 = geoms[0]
    lines: List[str] = []
    lines.append(PLOTFILE_VERSION)
    lines.append(str(len(var_names)))
    lines.extend(var_names)
    lines.append("2")  # spacedim
    lines.append(repr(float(time)))
    lines.append(str(finest))
    lines.append(f"{g0.prob_lo[0]} {g0.prob_lo[1]}")
    lines.append(f"{g0.prob_hi[0]} {g0.prob_hi[1]}")
    lines.append(" ".join([str(ref_ratio)] * max(finest, 0)))
    # Per-level index domains.
    lines.append(
        " ".join(
            f"(({g.domain.lo[0]},{g.domain.lo[1]}) "
            f"({g.domain.hi[0]},{g.domain.hi[1]}) (0,0))"
            for g in geoms
        )
    )
    lines.append(" ".join([str(step)] * nlev))
    for g in geoms:
        lines.append(f"{g.dx} {g.dy}")
    lines.append(str(g0.coord_sys))
    lines.append("0")  # boundary width
    for lev, (g, ba) in enumerate(zip(geoms, boxarrays)):
        lines.append(f"{lev} {len(ba)} {float(time)!r}")
        lines.append(str(step))
        if len(ba):
            lines.append(_grid_block(g, ba))
        lines.append(f"Level_{lev}/Cell")
    return "\n".join(lines) + "\n"


def build_job_info_text(
    job_name: str,
    nprocs: int,
    nnodes: int,
    inputs_echo: Sequence[Tuple[str, str]] = (),
) -> str:
    """Render the ``job_info`` provenance file (Castro-style)."""
    lines = [
        "==============================================================================",
        f" {job_name} Job Information",
        "==============================================================================",
        f"number of MPI processes: {nprocs}",
        f"number of nodes: {nnodes}",
        "",
        "==============================================================================",
        " Inputs File Parameters",
        "==============================================================================",
    ]
    for key, val in inputs_echo:
        lines.append(f"{key} = {val}")
    return "\n".join(lines) + "\n"
