"""Plotfile structure reader and size inspector.

Parses back what :mod:`repro.plotfile.writer` produced — enough to
verify round-trips in tests and to collect the per (step, level, task)
sizes the paper's analysis is built on (it post-processed plotfile
trees on Summit with a Julia package, ``jexio``; this is our
equivalent).
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..iosim.filesystem import FileSystem

__all__ = ["PlotfileInfo", "LevelInfo", "inspect_plotfile", "list_plotfiles"]

_CELLD_RE = re.compile(r"^Cell_D_(\d+)$")
_LEVEL_RE = re.compile(r"^Level_(\d+)$")
_PLT_RE = re.compile(r"^(.*?)(\d{5,})$")


@dataclass
class LevelInfo:
    """Sizes of one level directory of a plotfile."""

    level: int
    cellh_bytes: int = 0
    task_bytes: Dict[int, int] = field(default_factory=dict)

    @property
    def data_bytes(self) -> int:
        return sum(self.task_bytes.values())

    @property
    def ntasks_with_data(self) -> int:
        return len(self.task_bytes)


@dataclass
class PlotfileInfo:
    """Sizes and structure of one plotfile directory."""

    path: str
    step: int
    header_bytes: int = 0
    job_info_bytes: int = 0
    levels: Dict[int, LevelInfo] = field(default_factory=dict)

    @property
    def nlevels(self) -> int:
        return len(self.levels)

    @property
    def data_bytes(self) -> int:
        return sum(lv.data_bytes for lv in self.levels.values())

    @property
    def metadata_bytes(self) -> int:
        return (
            self.header_bytes
            + self.job_info_bytes
            + sum(lv.cellh_bytes for lv in self.levels.values())
        )

    @property
    def total_bytes(self) -> int:
        return self.data_bytes + self.metadata_bytes

    def bytes_per_level(self) -> Dict[int, int]:
        return {lev: info.data_bytes for lev, info in self.levels.items()}

    def bytes_per_task(self, level: Optional[int] = None) -> Dict[int, int]:
        out: Dict[int, int] = {}
        for lev, info in self.levels.items():
            if level is not None and lev != level:
                continue
            for rank, nb in info.task_bytes.items():
                out[rank] = out.get(rank, 0) + nb
        return out


def _step_of(path: str, prefix: str) -> Optional[int]:
    name = path.rstrip("/").split("/")[-1]
    if not name.startswith(prefix):
        return None
    suffix = name[len(prefix) :]
    return int(suffix) if suffix.isdigit() else None


def list_plotfiles(fs: FileSystem, prefix: str, root: str = "") -> List[Tuple[int, str]]:
    """All ``(step, dir)`` plotfile directories under ``root``, sorted."""
    dirs: Dict[str, int] = {}
    for p in fs.files(root):
        parts = p.split("/")
        for i, part in enumerate(parts[:-1]):
            if part.startswith(prefix):
                step = _step_of(part, prefix)
                if step is not None:
                    dirs["/".join(parts[: i + 1])] = step
    return sorted(((s, d) for d, s in dirs.items()))


def inspect_plotfile(fs: FileSystem, pdir: str) -> PlotfileInfo:
    """Collect the size hierarchy of one plotfile directory."""
    name = pdir.rstrip("/").split("/")[-1]
    m = _PLT_RE.match(name)
    step = int(m.group(2)) if m else -1
    info = PlotfileInfo(path=pdir, step=step)
    pre = pdir.rstrip("/") + "/"
    for p in fs.files(pdir):
        rel = p[len(pre) :] if p.startswith(pre) else p
        parts = rel.split("/")
        if len(parts) == 1:
            if parts[0] == "Header":
                info.header_bytes = fs.size(p)
            elif parts[0] == "job_info":
                info.job_info_bytes = fs.size(p)
        elif len(parts) == 2:
            lm = _LEVEL_RE.match(parts[0])
            if not lm:
                continue
            lev = int(lm.group(1))
            linfo = info.levels.setdefault(lev, LevelInfo(lev))
            cm = _CELLD_RE.match(parts[1])
            if cm:
                linfo.task_bytes[int(cm.group(1))] = fs.size(p)
            elif parts[1] == "Cell_H":
                linfo.cellh_bytes = fs.size(p)
    return info
