"""Plotfile structure reader and size inspector.

Parses back what :mod:`repro.plotfile.writer` produced — enough to
verify round-trips in tests and to collect the per (step, level, task)
sizes the paper's analysis is built on (it post-processed plotfile
trees on Summit with a Julia package, ``jexio``; this is our
equivalent).

The inspectors consume bulk ``(paths, sizes)`` pairs from
:meth:`repro.iosim.filesystem.FileSystem.files_sizes` and parse the
fixed ``Level_i/Cell_D_xxxxx`` shape with sliced string checks in a
single pass — no per-file regex, no stat call per path.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..iosim.filesystem import FileSystem

__all__ = ["PlotfileInfo", "LevelInfo", "inspect_plotfile", "list_plotfiles"]

# A plotfile directory name is <prefix><step> where AMReX's Concatenate
# pads the step to at least 5 digits.  The step group is anchored to the
# *maximal* trailing digit run (greedy prefix + lookbehind), so a prefix
# ending in digits can never shift the split point; runs longer than
# five that start with '0' are disambiguated in _split_plotfile_name.
_PLT_RE = re.compile(r"^(.*?)(?<!\d)(\d{5,})$")

_CELLD = "Cell_D_"
_LEVEL = "Level_"


def _split_plotfile_name(name: str) -> Optional[Tuple[str, int]]:
    """Split ``<prefix><step>`` into ``(prefix, step)``.

    The step is exactly the trailing run of five-or-more digits.  A run
    longer than five with a leading zero cannot be a raw AMReX step
    (``Concatenate`` pads to exactly five and never zero-pads a larger
    step), so its leading digits belong to the prefix and the step is
    the final five digits — ``x_plt0010000123`` parses as
    ``("x_plt00100", 123)``, not step 10000123.
    """
    m = _PLT_RE.match(name)
    if m is None:
        return None
    prefix, run = m.group(1), m.group(2)
    if len(run) > 5 and run[0] == "0":
        prefix, run = prefix + run[:-5], run[-5:]
    return prefix, int(run)


@dataclass
class LevelInfo:
    """Sizes of one level directory of a plotfile."""

    level: int
    cellh_bytes: int = 0
    task_bytes: Dict[int, int] = field(default_factory=dict)

    @property
    def data_bytes(self) -> int:
        return sum(self.task_bytes.values())

    @property
    def ntasks_with_data(self) -> int:
        return len(self.task_bytes)


@dataclass
class PlotfileInfo:
    """Sizes and structure of one plotfile directory."""

    path: str
    step: int
    header_bytes: int = 0
    job_info_bytes: int = 0
    levels: Dict[int, LevelInfo] = field(default_factory=dict)

    @property
    def nlevels(self) -> int:
        return len(self.levels)

    @property
    def data_bytes(self) -> int:
        return sum(lv.data_bytes for lv in self.levels.values())

    @property
    def metadata_bytes(self) -> int:
        return (
            self.header_bytes
            + self.job_info_bytes
            + sum(lv.cellh_bytes for lv in self.levels.values())
        )

    @property
    def total_bytes(self) -> int:
        return self.data_bytes + self.metadata_bytes

    def bytes_per_level(self) -> Dict[int, int]:
        return {lev: info.data_bytes for lev, info in self.levels.items()}

    def bytes_per_task(self, level: Optional[int] = None) -> Dict[int, int]:
        out: Dict[int, int] = {}
        for lev, info in self.levels.items():
            if level is not None and lev != level:
                continue
            for rank, nb in info.task_bytes.items():
                out[rank] = out.get(rank, 0) + nb
        return out


def _step_of(path: str, prefix: str) -> Optional[int]:
    name = path.rstrip("/").split("/")[-1]
    if not name.startswith(prefix):
        return None
    suffix = name[len(prefix) :]
    return int(suffix) if suffix.isdigit() else None


def list_plotfiles(fs: FileSystem, prefix: str, root: str = "") -> List[Tuple[int, str]]:
    """All ``(step, dir)`` plotfile directories under ``root``, sorted.

    Every file of a plotfile shares its directory path, so component
    matching runs once per *unique directory*, not once per file.
    """
    dirs: Dict[str, int] = {}
    seen_dirs: set = set()
    for p in fs.files(root):
        d = p.rsplit("/", 1)[0] if "/" in p else ""
        if d in seen_dirs:
            continue
        seen_dirs.add(d)
        parts = d.split("/") if d else []
        for i, part in enumerate(parts):
            if part.startswith(prefix):
                step = _step_of(part, prefix)
                if step is not None:
                    dirs["/".join(parts[: i + 1])] = step
    return sorted(((s, d) for d, s in dirs.items()))


def inspect_plotfile(fs: FileSystem, pdir: str) -> PlotfileInfo:
    """Collect the size hierarchy of one plotfile directory.

    One bulk ``files_sizes`` call supplies every path and size; the
    relative paths are parsed positionally (``Level_<l>/Cell_D_<rank>``)
    in a single pass.
    """
    name = pdir.rstrip("/").split("/")[-1]
    split = _split_plotfile_name(name)
    info = PlotfileInfo(path=pdir, step=split[1] if split else -1)
    pre = pdir.rstrip("/") + "/"
    plen = len(pre)
    paths, sizes = fs.files_sizes(pdir)
    levels = info.levels
    for p, sz in zip(paths, sizes.tolist()):
        rel = p[plen:] if p.startswith(pre) else p
        slash = rel.find("/")
        if slash < 0:
            if rel == "Header":
                info.header_bytes = sz
            elif rel == "job_info":
                info.job_info_bytes = sz
            continue
        head, tail = rel[:slash], rel[slash + 1 :]
        if "/" in tail or not head.startswith(_LEVEL):
            continue
        lev_s = head[len(_LEVEL) :]
        if not lev_s.isdigit():
            continue
        lev = int(lev_s)
        linfo = levels.get(lev)
        if linfo is None:
            linfo = levels[lev] = LevelInfo(lev)
        if tail.startswith(_CELLD):
            rank_s = tail[len(_CELLD) :]
            if rank_s.isdigit():
                linfo.task_bytes[int(rank_s)] = sz
        elif tail == "Cell_H":
            linfo.cellh_bytes = sz
    return info
