"""Checkpoint-restart output (``amr.check_file`` / ``amr.check_int``).

The paper: "AMReX also supports the generation of checkpoint-restart
data in a similar manner, but we focused on only the plot files for
this particular study."  We implement the checkpoint path too so the
proxy methodology extends to it: same N-to-N layout, but checkpoints
carry the raw *state* vector (not the derived plot set) plus ghost
metadata, making them smaller per cell yet restart-complete.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..amr.boxarray import BoxArray
from ..amr.distribution import DistributionMapping
from ..amr.geometry import Geometry
from ..iosim.darshan import IOTrace
from ..iosim.filesystem import FileSystem
from .fab import fab_nbytes
from .header import build_header_text
from .varlist import STATE_VARS

__all__ = ["CheckpointSpec", "write_checkpoint", "checkpoint_name"]


def checkpoint_name(prefix: str, step: int) -> str:
    """Directory name ``<check_file><step:05d>`` (Listing 2 default
    prefix: ``sedov_2d_cyl_in_cart_chk``)."""
    return f"{prefix}{step:05d}"


@dataclass(frozen=True)
class CheckpointSpec:
    """Checkpoint naming and contents."""

    prefix: str = "sedov_2d_cyl_in_cart_chk"
    nprocs: int = 1
    # Checkpoints store the conserved state vector only.
    nvars: int = len(STATE_VARS)


def write_checkpoint(
    fs: FileSystem,
    spec: CheckpointSpec,
    step: int,
    time: float,
    geoms: Sequence[Geometry],
    boxarrays: Sequence[BoxArray],
    distributions: Sequence[DistributionMapping],
    ref_ratio: int = 2,
    trace: Optional[IOTrace] = None,
) -> str:
    """Write one checkpoint directory (size-accounting mode).

    Layout mirrors the plotfile tree: a ``Header`` holding the restart
    metadata (time-step state included) and per-level ``Level_i/
    Cell_D_xxxxx`` files with the raw state FABs, one per owning task.
    """
    nlev = len(geoms)
    if not (len(boxarrays) == len(distributions) == nlev):
        raise ValueError("geoms/boxarrays/distributions length mismatch")
    cdir = checkpoint_name(spec.prefix, step)
    fs.mkdirs(cdir)
    header = build_header_text(
        list(STATE_VARS)[: spec.nvars], geoms, boxarrays, time, step, ref_ratio
    )
    # Restart additions: dt history and level steps (small text block).
    header += f"restart_dt_info {time!r} {step}\n"
    n = fs.write_text(f"{cdir}/Header", header)
    if trace is not None:
        trace.record(step, -1, 0, n, f"{cdir}/Header", kind="metadata")
    for lev in range(nlev):
        ba = boxarrays[lev]
        dm = distributions[lev]
        ldir = f"{cdir}/Level_{lev}"
        fs.mkdirs(ldir)
        rank_bytes = {}
        for k in range(len(ba)):
            rank_bytes.setdefault(dm[k], 0)
            rank_bytes[dm[k]] += fab_nbytes(ba[k], spec.nvars)
        for rank, nbytes in sorted(rank_bytes.items()):
            path = f"{ldir}/Cell_D_{rank:05d}"
            fs.write_size(path, nbytes)
            if trace is not None:
                trace.record(step, lev, rank, nbytes, path, kind="data")
    return cdir
