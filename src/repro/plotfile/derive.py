"""Derived plot fields (Castro's ``derive_plot_vars=ALL`` set).

Computes every plotted field from the 4-component conserved state so the
real-filesystem writer can emit genuine data.  Quantities Castro derives
from microphysics we don't carry (Temp, species, enuc) are computed from
ideal-gas relations with unit constants — their *sizes* (what the paper
measures) are identical either way.
"""

from __future__ import annotations

from typing import Callable, Dict, List

import numpy as np

from ..hydro.eos import GammaLawEOS
from ..hydro.state import QP, QRHO, QU, QV, UEDEN, UMX, UMY, URHO, cons_to_prim
from .varlist import plot_variables

__all__ = ["derive_fields"]


def derive_fields(
    U: np.ndarray, eos: GammaLawEOS, derive_all: bool = True, dx: float = 1.0, dy: float = 1.0
) -> np.ndarray:
    """All plot fields for conserved patch ``U`` (4, nx, ny).

    Returns an array of shape (nvars, nx, ny) with fields ordered as
    :func:`repro.plotfile.varlist.plot_variables`.
    """
    W = cons_to_prim(U, eos)
    rho, u, v, p = W[QRHO], W[QU], W[QV], W[QP]
    e_int = eos.internal_energy(rho, p)
    c = eos.sound_speed(rho, p)
    vel2 = u * u + v * v
    names = plot_variables(derive_all)
    out = np.empty((len(names),) + U.shape[1:], dtype=np.float64)

    # divu via centered differences (one-sided at patch edges).
    divu = np.zeros_like(rho)
    divu[1:-1, :] += (u[2:, :] - u[:-2, :]) / (2 * dx)
    divu[:, 1:-1] += (v[:, 2:] - v[:, :-2]) / (2 * dy)

    safe_rho = np.maximum(rho, eos.small_density)
    values: Dict[str, np.ndarray] = {
        "density": rho,
        "xmom": U[UMX],
        "ymom": U[UMY],
        "rho_E": U[UEDEN],
        "rho_e": rho * e_int,
        "Temp": p / safe_rho,  # ideal gas with unit gas constant
        "rho_X(A)": rho,  # single species: X == 1
        "pressure": p,
        "kineng": 0.5 * rho * vel2,
        "soundspeed": c,
        "MachNumber": np.sqrt(vel2) / c,
        "entropy": np.log(np.maximum(p, eos.small_pressure) / safe_rho**eos.gamma),
        "divu": divu,
        "eint_E": U[UEDEN] / safe_rho - 0.5 * vel2,
        "eint_e": e_int,
        "logden": np.log10(safe_rho),
        "magmom": np.sqrt(U[UMX] ** 2 + U[UMY] ** 2),
        "magvel": np.sqrt(vel2),
        "radvel": np.zeros_like(rho),  # filled below if coords known
        "x_velocity": u,
        "y_velocity": v,
        "t_sound_t_enuc": np.full_like(rho, np.inf),  # no reactions
        "X(A)": np.ones_like(rho),
        "maggrav": np.zeros_like(rho),  # self-gravity off for Sedov
    }
    for k, name in enumerate(names):
        out[k] = values[name]
    # Replace infinities (t_sound_t_enuc) with a large sentinel as Castro
    # caps them for plotting.
    np.nan_to_num(out, copy=False, posinf=1e200, neginf=-1e200)
    return out
