"""Derived plot fields (Castro's ``derive_plot_vars=ALL`` set).

Computes every plotted field from the 4-component conserved state so the
real-filesystem writer can emit genuine data.  Quantities Castro derives
from microphysics we don't carry (Temp, species, enuc) are computed from
ideal-gas relations with unit constants — their *sizes* (what the paper
measures) are identical either way.

Two entry points produce bit-identical values: :func:`derive_fields`
(one conserved patch, the seed form) and :func:`derive_fields_flat`
(a whole level's patches concatenated cell-flat — one ``cons_to_prim``
and one pass per field for the entire batch; only the stencil field
``divu`` is evaluated per patch, on reshaped views of the flat arrays).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Sequence, Tuple

import numpy as np

from ..hydro.eos import GammaLawEOS
from ..hydro.state import QP, QRHO, QU, QV, UEDEN, UMX, UMY, URHO, cons_to_prim
from .varlist import plot_variables

__all__ = ["derive_fields", "derive_fields_flat"]


def derive_fields(
    U: np.ndarray, eos: GammaLawEOS, derive_all: bool = True, dx: float = 1.0, dy: float = 1.0
) -> np.ndarray:
    """All plot fields for conserved patch ``U`` (4, nx, ny).

    Returns an array of shape (nvars, nx, ny) with fields ordered as
    :func:`repro.plotfile.varlist.plot_variables`.
    """
    W = cons_to_prim(U, eos)
    rho, u, v, p = W[QRHO], W[QU], W[QV], W[QP]
    e_int = eos.internal_energy(rho, p)
    c = eos.sound_speed(rho, p)
    vel2 = u * u + v * v
    names = plot_variables(derive_all)
    out = np.empty((len(names),) + U.shape[1:], dtype=np.float64)

    # divu via centered differences (one-sided at patch edges).
    divu = np.zeros_like(rho)
    divu[1:-1, :] += (u[2:, :] - u[:-2, :]) / (2 * dx)
    divu[:, 1:-1] += (v[:, 2:] - v[:, :-2]) / (2 * dy)

    safe_rho = np.maximum(rho, eos.small_density)
    values: Dict[str, np.ndarray] = {
        "density": rho,
        "xmom": U[UMX],
        "ymom": U[UMY],
        "rho_E": U[UEDEN],
        "rho_e": rho * e_int,
        "Temp": p / safe_rho,  # ideal gas with unit gas constant
        "rho_X(A)": rho,  # single species: X == 1
        "pressure": p,
        "kineng": 0.5 * rho * vel2,
        "soundspeed": c,
        "MachNumber": np.sqrt(vel2) / c,
        "entropy": np.log(np.maximum(p, eos.small_pressure) / safe_rho**eos.gamma),
        "divu": divu,
        "eint_E": U[UEDEN] / safe_rho - 0.5 * vel2,
        "eint_e": e_int,
        "logden": np.log10(safe_rho),
        "magmom": np.sqrt(U[UMX] ** 2 + U[UMY] ** 2),
        "magvel": np.sqrt(vel2),
        "radvel": np.zeros_like(rho),  # filled below if coords known
        "x_velocity": u,
        "y_velocity": v,
        "t_sound_t_enuc": np.full_like(rho, np.inf),  # no reactions
        "X(A)": np.ones_like(rho),
        "maggrav": np.zeros_like(rho),  # self-gravity off for Sedov
    }
    for k, name in enumerate(names):
        out[k] = values[name]
    # Replace infinities (t_sound_t_enuc) with a large sentinel as Castro
    # caps them for plotting.
    np.nan_to_num(out, copy=False, posinf=1e200, neginf=-1e200)
    return out


def derive_fields_flat(
    U: np.ndarray,
    shapes: Sequence[Tuple[int, int]],
    eos: GammaLawEOS,
    derive_all: bool = True,
    dx: float = 1.0,
    dy: float = 1.0,
) -> np.ndarray:
    """All plot fields for a level batch of conserved patches.

    Parameters
    ----------
    U:
        ``(4, total_cells)`` — every patch's interior C-order raveled and
        concatenated in box order.
    shapes:
        Per-patch ``(nx, ny)``; ``sum(nx*ny)`` must equal ``total_cells``.

    Returns ``(nvars, total_cells)`` float64; column-for-column identical
    to calling :func:`derive_fields` on each patch separately (all fields
    are elementwise except ``divu``, which is computed per patch on views
    into the flat arrays).
    """
    W = cons_to_prim(U, eos)
    rho, u, v, p = W[QRHO], W[QU], W[QV], W[QP]
    e_int = eos.internal_energy(rho, p)
    c = eos.sound_speed(rho, p)
    vel2 = u * u + v * v
    safe_rho = np.maximum(rho, eos.small_density)

    def _divu() -> np.ndarray:
        out = np.zeros_like(rho)
        s = 0
        for nx, ny in shapes:
            e = s + nx * ny
            u2, v2 = u[s:e].reshape(nx, ny), v[s:e].reshape(nx, ny)
            d2 = out[s:e].reshape(nx, ny)
            d2[1:-1, :] += (u2[2:, :] - u2[:-2, :]) / (2 * dx)
            d2[:, 1:-1] += (v2[:, 2:] - v2[:, :-2]) / (2 * dy)
            s = e
        return out

    # Lazy per-field thunks: only the requested variables are computed.
    values: Dict[str, Callable[[], np.ndarray]] = {
        "density": lambda: rho,
        "xmom": lambda: U[UMX],
        "ymom": lambda: U[UMY],
        "rho_E": lambda: U[UEDEN],
        "rho_e": lambda: rho * e_int,
        "Temp": lambda: p / safe_rho,  # ideal gas with unit gas constant
        "rho_X(A)": lambda: rho,  # single species: X == 1
        "pressure": lambda: p,
        "kineng": lambda: 0.5 * rho * vel2,
        "soundspeed": lambda: c,
        "MachNumber": lambda: np.sqrt(vel2) / c,
        "entropy": lambda: np.log(
            np.maximum(p, eos.small_pressure) / safe_rho**eos.gamma
        ),
        "divu": _divu,
        "eint_E": lambda: U[UEDEN] / safe_rho - 0.5 * vel2,
        "eint_e": lambda: e_int,
        "logden": lambda: np.log10(safe_rho),
        "magmom": lambda: np.sqrt(U[UMX] ** 2 + U[UMY] ** 2),
        "magvel": lambda: np.sqrt(vel2),
        "radvel": lambda: np.zeros_like(rho),
        "x_velocity": lambda: u,
        "y_velocity": lambda: v,
        "t_sound_t_enuc": lambda: np.full_like(rho, np.inf),  # no reactions
        "X(A)": lambda: np.ones_like(rho),
        "maggrav": lambda: np.zeros_like(rho),  # self-gravity off for Sedov
    }
    names = plot_variables(derive_all)
    out = np.empty((len(names),) + U.shape[1:], dtype=np.float64)
    for k, name in enumerate(names):
        out[k] = values[name]()
    np.nan_to_num(out, copy=False, posinf=1e200, neginf=-1e200)
    return out
