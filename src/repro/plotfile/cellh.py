"""Per-level ``Cell_H`` metadata files.

``Cell_H`` describes the FABs of one level: the box list, which
``Cell_D_xxxxx`` file holds each FAB and at what byte offset, and the
per-FAB component min/max tables AMReX appends.

Two builders render byte-identical text: :func:`build_cellh_text` takes
the seed-style per-box :class:`FabLocation` objects, and
:func:`build_cellh_arrays` consumes the arrays the batched writer
produces (per-box filenames, an offset vector, optional ``(nfab, ncomp)``
min/max matrices) without materializing per-box location objects.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..amr.box import Box
from ..amr.boxarray import BoxArray

__all__ = ["build_cellh_text", "build_cellh_arrays", "FabLocation"]


class FabLocation:
    """Placement of one FAB: which Cell_D file, at which offset."""

    __slots__ = ("filename", "offset")

    def __init__(self, filename: str, offset: int) -> None:
        self.filename = filename
        self.offset = int(offset)


def build_cellh_text(
    ba: BoxArray,
    ncomp: int,
    locations: Sequence[FabLocation],
    minmax: Sequence[Tuple[Sequence[float], Sequence[float]]] = (),
) -> str:
    """Render a level's ``Cell_H``.

    Parameters
    ----------
    ba:
        The level's box array.
    ncomp:
        Components per FAB.
    locations:
        One :class:`FabLocation` per box (order matches ``ba``).
    minmax:
        Optional per-FAB (mins, maxs) tables, each of length ``ncomp``.
    """
    if len(locations) != len(ba):
        raise ValueError("need one FabLocation per box")
    lines: List[str] = []
    lines.append("1")  # version
    lines.append("1")  # how (ordering)
    lines.append(str(ncomp))
    lines.append("0")  # nghost on disk
    lines.append(f"({len(ba)} 0")
    for b in ba:
        lines.append(f"(({b.lo[0]},{b.lo[1]}) ({b.hi[0]},{b.hi[1]}) (0,0))")
    lines.append(")")
    lines.append(str(len(ba)))
    for loc in locations:
        lines.append(f"FabOnDisk: {loc.filename} {loc.offset}")
    if minmax:
        if len(minmax) != len(ba):
            raise ValueError("minmax table length must match box count")
        lines.append("")
        lines.append(f"{len(ba)},{ncomp}")
        for mins, _maxs in minmax:
            lines.append(",".join(repr(float(v)) for v in mins) + ",")
        lines.append("")
        lines.append(f"{len(ba)},{ncomp}")
        for _mins, maxs in minmax:
            lines.append(",".join(repr(float(v)) for v in maxs) + ",")
    return "\n".join(lines) + "\n"


def build_cellh_arrays(
    ba: BoxArray,
    ncomp: int,
    filenames: Sequence[str],
    offsets: np.ndarray,
    mins: Optional[np.ndarray] = None,
    maxs: Optional[np.ndarray] = None,
) -> str:
    """Render a level's ``Cell_H`` from the batched writer's arrays.

    ``filenames[k]`` / ``offsets[k]`` place box ``k``; ``mins``/``maxs``
    are optional ``(nfab, ncomp)`` float matrices.  Output is
    byte-identical to :func:`build_cellh_text` fed the equivalent
    :class:`FabLocation` / tuple-table inputs.
    """
    n = len(ba)
    if len(filenames) != n or len(offsets) != n:
        raise ValueError("need one filename and offset per box")
    los, his = ba.corners()
    lo_l, hi_l = los.tolist(), his.tolist()
    off_l = np.asarray(offsets).tolist()
    lines: List[str] = ["1", "1", str(ncomp), "0", f"({n} 0"]
    lines.extend(
        f"(({lo[0]},{lo[1]}) ({hi[0]},{hi[1]}) (0,0))"
        for lo, hi in zip(lo_l, hi_l)
    )
    lines.append(")")
    lines.append(str(n))
    lines.extend(
        f"FabOnDisk: {fn} {off}" for fn, off in zip(filenames, off_l)
    )
    # Like build_cellh_text's `if minmax:` guard, an empty level emits no
    # min/max section even in data mode.
    if n and (mins is not None or maxs is not None):
        if mins is None or maxs is None or len(mins) != n or len(maxs) != n:
            raise ValueError(f"mins/maxs length must match box count n={n}")
        lines.append("")
        lines.append(f"{n},{ncomp}")
        lines.extend(
            ",".join(map(repr, row)) + "," for row in mins.tolist()
        )
        lines.append("")
        lines.append(f"{n},{ncomp}")
        lines.extend(
            ",".join(map(repr, row)) + "," for row in maxs.tolist()
        )
    return "\n".join(lines) + "\n"
