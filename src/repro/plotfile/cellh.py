"""Per-level ``Cell_H`` metadata files.

``Cell_H`` describes the FABs of one level: the box list, which
``Cell_D_xxxxx`` file holds each FAB and at what byte offset, and the
per-FAB component min/max tables AMReX appends.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from ..amr.box import Box
from ..amr.boxarray import BoxArray

__all__ = ["build_cellh_text", "FabLocation"]


class FabLocation:
    """Placement of one FAB: which Cell_D file, at which offset."""

    __slots__ = ("filename", "offset")

    def __init__(self, filename: str, offset: int) -> None:
        self.filename = filename
        self.offset = int(offset)


def build_cellh_text(
    ba: BoxArray,
    ncomp: int,
    locations: Sequence[FabLocation],
    minmax: Sequence[Tuple[Sequence[float], Sequence[float]]] = (),
) -> str:
    """Render a level's ``Cell_H``.

    Parameters
    ----------
    ba:
        The level's box array.
    ncomp:
        Components per FAB.
    locations:
        One :class:`FabLocation` per box (order matches ``ba``).
    minmax:
        Optional per-FAB (mins, maxs) tables, each of length ``ncomp``.
    """
    if len(locations) != len(ba):
        raise ValueError("need one FabLocation per box")
    lines: List[str] = []
    lines.append("1")  # version
    lines.append("1")  # how (ordering)
    lines.append(str(ncomp))
    lines.append("0")  # nghost on disk
    lines.append(f"({len(ba)} 0")
    for b in ba:
        lines.append(f"(({b.lo[0]},{b.lo[1]}) ({b.hi[0]},{b.hi[1]}) (0,0))")
    lines.append(")")
    lines.append(str(len(ba)))
    for loc in locations:
        lines.append(f"FabOnDisk: {loc.filename} {loc.offset}")
    if minmax:
        if len(minmax) != len(ba):
            raise ValueError("minmax table length must match box count")
        lines.append("")
        lines.append(f"{len(ba)},{ncomp}")
        for mins, _maxs in minmax:
            lines.append(",".join(repr(float(v)) for v in mins) + ",")
        lines.append("")
        lines.append(f"{len(ba)},{ncomp}")
        for _mins, maxs in minmax:
            lines.append(",".join(repr(float(v)) for v in maxs) + ",")
    return "\n".join(lines) + "\n"
