"""N-to-N multi-level plotfile writer (``WriteMultiLevelPlotfile``).

Reproduces the Fig. 2 output structure: per dump a directory
``<plot_file><step:05d>`` containing ``Header`` and ``job_info`` at the
root and, per level, ``Level_i/Cell_H`` plus one ``Cell_D_xxxxx`` per
MPI task *that owns data at that level* (the paper notes a file is only
produced when a task has data at that level).

Two modes share one batched code path:

- **size mode** (default, any scale): FAB payloads are accounted, not
  materialized — works on a :class:`~repro.iosim.filesystem.VirtualFileSystem`
  at billions of cells.  All per-level accounting (file sizes, FAB
  offsets, the rendered ``Cell_H``) is produced as a vectorized
  *level plan* — closed-form :func:`~repro.plotfile.fab.fab_nbytes_array`
  byte counts, owner grouping and prefix sums as single array ops — and
  cached per ``(BoxArray identity, distribution, nvars)``, so repeat
  dumps of an unchanged layout replay the plan instead of re-deriving it.
- **data mode**: pass per-level ``MultiFab`` state and real bytes are
  encoded, enabling the read-back tests and disk examples.  The derive
  and encode stages are fused: one ``cons_to_prim``/derive pass over the
  whole level batch (:func:`~repro.plotfile.derive.derive_fields_flat`),
  per-FAB min/max as one ``reduceat`` per extreme, and each rank's blob
  written component-major straight into one preallocated buffer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..amr.boxarray import BoxArray
from ..amr.distribution import DistributionMapping
from ..amr.geometry import Geometry
from ..amr.multifab import MultiFab
from ..hydro.eos import GammaLawEOS
from ..iosim.darshan import IOTrace
from ..iosim.filesystem import FileSystem
from .. import sanitize
from ..sanitize import frozen
from .cellh import build_cellh_arrays
from .derive import derive_fields_flat
from .fab import fab_header, fab_nbytes_array
from .header import build_header_text, build_job_info_text
from .varlist import plot_variables

__all__ = [
    "PlotfileSpec",
    "write_plotfile",
    "plotfile_name",
    "clear_plan_cache",
]


def plotfile_name(prefix: str, step: int) -> str:
    """Directory name of a dump: ``<prefix><step:05d>`` (AMReX Concatenate)."""
    return f"{prefix}{step:05d}"


@dataclass(frozen=True)
class PlotfileSpec:
    """Everything a dump needs besides the mesh itself."""

    prefix: str = "sedov_2d_cyl_in_cart_plt"
    derive_all: bool = True
    nprocs: int = 1
    nnodes: int = 1
    job_name: str = "Castro"

    @property
    def var_names(self) -> List[str]:
        return plot_variables(self.derive_all)


# ----------------------------------------------------------------------
# Per-level dump plan: everything about one (layout, distribution, nvars)
# combination that does not depend on the dump's step/time.
# ----------------------------------------------------------------------
class _LevelPlan:
    """Vectorized size accounting for one level's N-to-N burst.

    Derived once per ``(BoxArray.token, distribution ranks, nvars)`` and
    cached: per-FAB on-disk byte counts, owner grouping (which ranks own
    data, which boxes land in which ``Cell_D`` file at which offset),
    per-file sizes, and the rendered size-mode ``Cell_H`` text.
    """

    __slots__ = (
        "ranks",
        "fnames",
        "sizes",
        "nbytes",
        "offsets",
        "order",
        "bounds",
        "fname_of_box",
        "cellh",
        "_data_aux",
    )

    def __init__(self, ba: BoxArray, dm: DistributionMapping, nvars: int) -> None:
        n = len(ba)
        ranks_arr = np.fromiter(dm.ranks, dtype=np.int64, count=n)
        los, his = ba.corners()
        self.nbytes = frozen(fab_nbytes_array(los, his, ba.box_sizes(), nvars))
        if n == 0:
            self.ranks = frozen(np.empty(0, dtype=np.int64))
            self.fnames: List[str] = []
            self.sizes = frozen(np.empty(0, dtype=np.int64))
            self.offsets = frozen(np.empty(0, dtype=np.int64))
            self.order = frozen(np.empty(0, dtype=np.int64))
            self.bounds = frozen(np.zeros(1, dtype=np.int64))
            self.fname_of_box: List[str] = []
        else:
            # Stable sort by owner: boxes stay in index order within each
            # rank's file — the same order the per-fab loop produced.
            order = np.argsort(ranks_arr, kind="stable")
            bsort = self.nbytes[order]
            starts = np.cumsum(bsort) - bsort
            uniq, first = np.unique(ranks_arr[order], return_index=True)
            self.ranks = frozen(uniq)
            self.sizes = frozen(np.add.reduceat(bsort, first))
            self.order = frozen(order)
            self.bounds = frozen(np.append(first, n).astype(np.int64))
            counts = np.diff(self.bounds)
            rel = starts - np.repeat(starts[first], counts)
            offsets = np.empty(n, dtype=np.int64)
            offsets[order] = rel
            self.offsets = frozen(offsets)
            self.fnames = [f"Cell_D_{int(r):05d}" for r in uniq]
            which = np.searchsorted(uniq, ranks_arr)
            self.fname_of_box = [self.fnames[i] for i in which.tolist()]
        self.cellh = build_cellh_arrays(ba, nvars, self.fname_of_box, self.offsets)
        self._data_aux: Optional[Tuple[list, np.ndarray, list]] = None

    def data_aux(self, ba: BoxArray, nvars: int):
        """Layout-invariant data-mode precomputation, built on first use:
        per-box ``(nx, ny)`` shapes, cell-offset prefix sums, and the
        encoded ASCII FAB headers."""
        if self._data_aux is None:
            cells = ba.box_sizes()
            cell_start = np.cumsum(cells) - cells
            los, his = ba.corners()
            shapes = [
                (int(h0 - l0 + 1), int(h1 - l1 + 1))
                for (l0, l1), (h0, h1) in zip(los.tolist(), his.tolist())
            ]
            headers = [fab_header(b, nvars).encode("ascii") for b in ba]
            self._data_aux = (shapes, cell_start, headers)
        return self._data_aux


_PLAN_CACHE: Dict[Tuple[int, Tuple[int, ...], int], _LevelPlan] = {}
_PLAN_CRC: Dict[Tuple[int, Tuple[int, ...], int], int] = {}
_PLAN_CACHE_MAX = 256


def clear_plan_cache() -> None:
    """Drop all cached level plans (tests / memory pressure)."""
    _PLAN_CACHE.clear()
    _PLAN_CRC.clear()


def _plan_fingerprint(plan: _LevelPlan) -> int:
    """Sanitizer checksum over the replayed parts of a level plan."""
    return sanitize.checksum((
        plan.nbytes, plan.ranks, plan.sizes, plan.offsets,
        plan.order, plan.bounds, plan.fnames, plan.fname_of_box,
    ))


def _level_plan(ba: BoxArray, dm: DistributionMapping, nvars: int) -> _LevelPlan:
    key = (ba.token, dm.ranks, nvars)
    plan = _PLAN_CACHE.get(key)
    if plan is None:
        if len(_PLAN_CACHE) >= _PLAN_CACHE_MAX:
            _PLAN_CACHE.clear()
            _PLAN_CRC.clear()
        plan = _PLAN_CACHE[key] = _LevelPlan(ba, dm, nvars)
        if sanitize.enabled():
            _PLAN_CRC[key] = _plan_fingerprint(plan)
    elif sanitize.enabled():
        want = _PLAN_CRC.setdefault(key, _plan_fingerprint(plan))
        sanitize.check(
            _plan_fingerprint(plan) == want,
            f"cached level plan for key {key} drifted since it was built "
            "(a consumer mutated a plan buffer)",
        )
    return plan


# ----------------------------------------------------------------------
def _encode_level(
    plan: _LevelPlan,
    ba: BoxArray,
    mf: MultiFab,
    geom: Geometry,
    eos: GammaLawEOS,
    derive_all: bool,
    nvars: int,
) -> Tuple[List[bytearray], np.ndarray, np.ndarray]:
    """Fused derive+encode of one level: per-rank blobs plus min/max.

    Returns ``(buffers, mins, maxs)`` where ``buffers[i]`` is the ready
    ``Cell_D`` content for ``plan.ranks[i]`` and ``mins``/``maxs`` are
    ``(nfab, nvars)`` per-FAB component extrema.
    """
    n = len(ba)
    if n == 0:
        empty = np.empty((0, nvars), dtype=np.float64)
        return [], empty, empty
    shapes, cell_start, headers = plan.data_aux(ba, nvars)
    total = int(cell_start[-1]) + shapes[-1][0] * shapes[-1][1]

    # One gather of every interior into the flat level batch, then one
    # derive pass for all boxes at once.
    U = np.empty((mf.ncomp, total), dtype=np.float64)
    for k in range(n):
        s = int(cell_start[k])
        nx, ny = shapes[k]
        U[:, s : s + nx * ny] = mf[k].interior().reshape(mf.ncomp, -1)
    fields = derive_fields_flat(U, shapes, eos, derive_all, geom.dx, geom.dy)

    # Per-FAB component extrema: one reduceat per extreme over the whole
    # (nvars, total) batch instead of 2*nvars Python floats per box.
    seg_starts = cell_start.astype(np.intp)
    mins = np.minimum.reduceat(fields, seg_starts, axis=1).T
    maxs = np.maximum.reduceat(fields, seg_starts, axis=1).T

    buffers: List[bytearray] = []
    order = plan.order.tolist()
    for ri in range(len(plan.ranks)):
        buf = bytearray(int(plan.sizes[ri]))
        for k in order[plan.bounds[ri] : plan.bounds[ri + 1]]:
            nx, ny = shapes[k]
            hdr = headers[k]
            off = int(plan.offsets[k])
            buf[off : off + len(hdr)] = hdr
            s = int(cell_start[k])
            seg = fields[:, s : s + nx * ny].reshape(nvars, nx, ny)
            payload = np.frombuffer(
                memoryview(buf),
                dtype="<f8",
                count=nvars * nx * ny,
                offset=off + len(hdr),
            ).reshape(nvars, ny, nx)
            # Component-major, Fortran order within each component —
            # one strided copy straight into the output buffer.
            payload[...] = np.swapaxes(seg, 1, 2)
        buffers.append(buf)
    return buffers, mins, maxs


def write_plotfile(
    fs: FileSystem,
    spec: PlotfileSpec,
    step: int,
    time: float,
    geoms: Sequence[Geometry],
    boxarrays: Sequence[BoxArray],
    distributions: Sequence[DistributionMapping],
    ref_ratio: int = 2,
    state: Optional[Sequence[MultiFab]] = None,
    eos: Optional[GammaLawEOS] = None,
    trace: Optional[IOTrace] = None,
) -> str:
    """Write one dump; returns the plotfile directory path.

    Parameters
    ----------
    fs:
        Target filesystem (virtual or real).
    spec:
        Naming / variable configuration.
    step, time:
        Dump identity.
    geoms, boxarrays, distributions:
        Per-level mesh and ownership (coarsest first, equal lengths).
    state:
        Optional per-level conserved-state MultiFabs for data mode.
    trace:
        Optional I/O trace receiving one record per file written.
    """
    nlev = len(geoms)
    if not (len(boxarrays) == len(distributions) == nlev):
        raise ValueError("geoms/boxarrays/distributions length mismatch")
    if state is not None and len(state) != nlev:
        raise ValueError("state must have one MultiFab per level")
    var_names = spec.var_names
    nvars = len(var_names)
    pdir = plotfile_name(spec.prefix, step)
    fs.mkdirs(pdir)

    # ------------------------------------------------------------------
    # top-level metadata
    # ------------------------------------------------------------------
    header = build_header_text(var_names, geoms, boxarrays, time, step, ref_ratio)
    n = fs.write_text(f"{pdir}/Header", header)
    if trace is not None:
        trace.record(step, -1, 0, n, f"{pdir}/Header", kind="metadata")
    job_info = build_job_info_text(spec.job_name, spec.nprocs, spec.nnodes)
    n = fs.write_text(f"{pdir}/job_info", job_info)
    if trace is not None:
        trace.record(step, -1, 0, n, f"{pdir}/job_info", kind="metadata")

    # ------------------------------------------------------------------
    # per-level data
    # ------------------------------------------------------------------
    the_eos = eos or GammaLawEOS()
    for lev in range(nlev):
        ba = boxarrays[lev]
        dm = distributions[lev]
        ldir = f"{pdir}/Level_{lev}"
        fs.mkdirs(ldir)
        plan = _level_plan(ba, dm, nvars)
        paths = [f"{ldir}/{fn}" for fn in plan.fnames]
        if state is not None:
            buffers, mins, maxs = _encode_level(
                plan, ba, state[lev], geoms[lev], the_eos, spec.derive_all, nvars
            )
            sizes = [fs.write_bytes(p, buf) for p, buf in zip(paths, buffers)]
            cellh = build_cellh_arrays(
                ba, nvars, plan.fname_of_box, plan.offsets, mins, maxs
            )
        else:
            # Size mode: the whole level's N-to-N burst is one batched
            # filesystem call replaying the cached plan.
            fs.write_many(paths, plan.sizes)
            sizes = plan.sizes
            cellh = plan.cellh
        if trace is not None and len(plan.ranks):
            trace.record_batch(step, lev, plan.ranks, sizes, paths, kind="data")
        n = fs.write_text(f"{ldir}/Cell_H", cellh)
        if trace is not None:
            trace.record(step, lev, 0, n, f"{ldir}/Cell_H", kind="metadata")
    return pdir
