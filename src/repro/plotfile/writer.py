"""N-to-N multi-level plotfile writer (``WriteMultiLevelPlotfile``).

Reproduces the Fig. 2 output structure: per dump a directory
``<plot_file><step:05d>`` containing ``Header`` and ``job_info`` at the
root and, per level, ``Level_i/Cell_H`` plus one ``Cell_D_xxxxx`` per
MPI task *that owns data at that level* (the paper notes a file is only
produced when a task has data at that level).

Two modes share one code path:

- **size mode** (default, any scale): FAB payloads are accounted, not
  materialized — works on a :class:`~repro.iosim.filesystem.VirtualFileSystem`
  at billions of cells.
- **data mode**: pass per-level ``MultiFab`` state and real bytes are
  encoded, enabling the read-back tests and disk examples.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..amr.boxarray import BoxArray
from ..amr.distribution import DistributionMapping
from ..amr.geometry import Geometry
from ..amr.multifab import MultiFab
from ..hydro.eos import GammaLawEOS
from ..iosim.darshan import IOTrace
from ..iosim.filesystem import FileSystem
from .cellh import FabLocation, build_cellh_text
from .derive import derive_fields
from .fab import encode_fab, fab_nbytes
from .header import build_header_text, build_job_info_text
from .varlist import plot_variables

__all__ = ["PlotfileSpec", "write_plotfile", "plotfile_name"]


def plotfile_name(prefix: str, step: int) -> str:
    """Directory name of a dump: ``<prefix><step:05d>`` (AMReX Concatenate)."""
    return f"{prefix}{step:05d}"


@dataclass(frozen=True)
class PlotfileSpec:
    """Everything a dump needs besides the mesh itself."""

    prefix: str = "sedov_2d_cyl_in_cart_plt"
    derive_all: bool = True
    nprocs: int = 1
    nnodes: int = 1
    job_name: str = "Castro"

    @property
    def var_names(self) -> List[str]:
        return plot_variables(self.derive_all)


def write_plotfile(
    fs: FileSystem,
    spec: PlotfileSpec,
    step: int,
    time: float,
    geoms: Sequence[Geometry],
    boxarrays: Sequence[BoxArray],
    distributions: Sequence[DistributionMapping],
    ref_ratio: int = 2,
    state: Optional[Sequence[MultiFab]] = None,
    eos: Optional[GammaLawEOS] = None,
    trace: Optional[IOTrace] = None,
) -> str:
    """Write one dump; returns the plotfile directory path.

    Parameters
    ----------
    fs:
        Target filesystem (virtual or real).
    spec:
        Naming / variable configuration.
    step, time:
        Dump identity.
    geoms, boxarrays, distributions:
        Per-level mesh and ownership (coarsest first, equal lengths).
    state:
        Optional per-level conserved-state MultiFabs for data mode.
    trace:
        Optional I/O trace receiving one record per file written.
    """
    nlev = len(geoms)
    if not (len(boxarrays) == len(distributions) == nlev):
        raise ValueError("geoms/boxarrays/distributions length mismatch")
    if state is not None and len(state) != nlev:
        raise ValueError("state must have one MultiFab per level")
    var_names = spec.var_names
    nvars = len(var_names)
    pdir = plotfile_name(spec.prefix, step)
    fs.mkdirs(pdir)

    # ------------------------------------------------------------------
    # top-level metadata
    # ------------------------------------------------------------------
    header = build_header_text(var_names, geoms, boxarrays, time, step, ref_ratio)
    n = fs.write_text(f"{pdir}/Header", header)
    if trace is not None:
        trace.record(step, -1, 0, n, f"{pdir}/Header", kind="metadata")
    job_info = build_job_info_text(spec.job_name, spec.nprocs, spec.nnodes)
    n = fs.write_text(f"{pdir}/job_info", job_info)
    if trace is not None:
        trace.record(step, -1, 0, n, f"{pdir}/job_info", kind="metadata")

    # ------------------------------------------------------------------
    # per-level data
    # ------------------------------------------------------------------
    for lev in range(nlev):
        ba = boxarrays[lev]
        dm = distributions[lev]
        ldir = f"{pdir}/Level_{lev}"
        fs.mkdirs(ldir)
        # Group boxes by owner rank: one Cell_D file per owning task.
        rank_boxes: Dict[int, List[int]] = {}
        for k in range(len(ba)):
            rank_boxes.setdefault(dm[k], []).append(k)
        locations: List[Optional[FabLocation]] = [None] * len(ba)
        minmax: List[Tuple[List[float], List[float]]] = [
            ([0.0] * nvars, [0.0] * nvars) for _ in range(len(ba))
        ]
        ranks = sorted(rank_boxes)
        paths = [f"{ldir}/Cell_D_{rank:05d}" for rank in ranks]
        sizes: List[int] = []
        for rank, path in zip(ranks, paths):
            fname = path.rsplit("/", 1)[-1]
            offset = 0
            chunks: List[bytes] = []
            for k in rank_boxes[rank]:
                box = ba[k]
                locations[k] = FabLocation(fname, offset)
                if state is not None:
                    mf = state[lev]
                    fields = derive_fields(
                        mf[k].interior(),
                        eos or GammaLawEOS(),
                        spec.derive_all,
                        geoms[lev].dx,
                        geoms[lev].dy,
                    )
                    blob = encode_fab(box, fields)
                    chunks.append(blob)
                    offset += len(blob)
                    minmax[k] = (
                        [float(fields[c].min()) for c in range(nvars)],
                        [float(fields[c].max()) for c in range(nvars)],
                    )
                else:
                    offset += fab_nbytes(box, nvars)
            if state is not None:
                sizes.append(fs.write_bytes(path, b"".join(chunks)))
            else:
                sizes.append(offset)
        if state is None:
            # Size mode: the whole level's N-to-N burst is one batched
            # filesystem call instead of a write per task.
            fs.write_many(paths, sizes)
        if trace is not None and ranks:
            trace.record_batch(step, lev, ranks, sizes, paths, kind="data")
        cellh = build_cellh_text(
            ba,
            nvars,
            [loc for loc in locations if loc is not None],
            minmax if state is not None else (),
        )
        n = fs.write_text(f"{ldir}/Cell_H", cellh)
        if trace is not None:
            trace.record(step, lev, 0, n, f"{ldir}/Cell_H", kind="metadata")
    return pdir
