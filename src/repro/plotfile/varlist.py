"""Plot-variable lists (Castro state + ``amr.derive_plot_vars=ALL``).

The paper's input file (Listing 2) sets ``amr.derive_plot_vars=ALL``,
which makes Castro write every state *and* derived field — about two
dozen double-precision values per cell.  That multiplicity is exactly
the origin of the paper's empirical correction factor ``f ≈ 23–25`` in
Eq. (3): output bytes per cell ≈ (number of fields) × 8.
"""

from __future__ import annotations

from typing import List, Tuple

__all__ = ["STATE_VARS", "DERIVED_VARS", "plot_variables", "N_PLOT_VARS_ALL"]

# Castro 2-D state vector with one species (the gamma-law Sedov setup).
STATE_VARS: Tuple[str, ...] = (
    "density",
    "xmom",
    "ymom",
    "rho_E",
    "rho_e",
    "Temp",
    "rho_X(A)",
)

# The derived fields Castro's ALL produces for a 2-D hydro run.
DERIVED_VARS: Tuple[str, ...] = (
    "pressure",
    "kineng",
    "soundspeed",
    "MachNumber",
    "entropy",
    "divu",
    "eint_E",
    "eint_e",
    "logden",
    "magmom",
    "magvel",
    "radvel",
    "x_velocity",
    "y_velocity",
    "t_sound_t_enuc",
    "X(A)",
    "maggrav",
)

N_PLOT_VARS_ALL = len(STATE_VARS) + len(DERIVED_VARS)
assert N_PLOT_VARS_ALL == 24, "derive_plot_vars=ALL should carry 24 fields"


def plot_variables(derive_all: bool = True) -> List[str]:
    """Names of the fields a plotfile carries.

    ``derive_all=True`` reproduces the paper's configuration (24 fields,
    hence f ≈ 24); ``False`` gives the bare state vector.
    """
    if derive_all:
        return list(STATE_VARS) + list(DERIVED_VARS)
    return list(STATE_VARS)
