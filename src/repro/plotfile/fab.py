"""On-disk FAB encoding (AMReX ``FArrayBox`` binary format).

Each grid's data is stored in a ``Cell_D_xxxxx`` file as an ASCII FAB
header line followed by raw doubles.  We reproduce the real format so
that the byte accounting (and the real-filesystem writer) matches what
Castro produces on Summit.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..amr.box import Box

__all__ = ["fab_header", "fab_nbytes", "encode_fab", "decode_fab_header"]

# The native-double descriptor AMReX writes on little-endian machines.
_REAL_DESCRIPTOR = (
    "FAB ((8, (64 11 52 0 1 12 0 1023)),(8, (8 7 6 5 4 3 2 1)))"
)


def fab_header(box: Box, ncomp: int) -> str:
    """ASCII header line for one FAB (AMReX ``FArrayBox::writeOn``)."""
    lo = box.lo
    hi = box.hi
    # AMReX box format: ((lo) (hi) (type)) with cell-centered type (0,0).
    boxstr = f"(({lo[0]},{lo[1]}) ({hi[0]},{hi[1]}) (0,0))"
    return f"{_REAL_DESCRIPTOR}{boxstr} {ncomp}\n"


def fab_nbytes(box: Box, ncomp: int) -> int:
    """Total on-disk bytes of one FAB: header + ncomp*numpts doubles."""
    return len(fab_header(box, ncomp).encode("ascii")) + box.numpts * ncomp * 8


def encode_fab(box: Box, data: np.ndarray) -> bytes:
    """Serialize data of shape (ncomp, nx, ny) to the on-disk FAB bytes.

    Component-major, Fortran order within each component, matching
    AMReX's column-major storage.
    """
    ncomp = data.shape[0]
    nx, ny = box.shape
    if data.shape != (ncomp, nx, ny):
        raise ValueError(f"data shape {data.shape} does not match box {box} / ncomp {ncomp}")
    header = fab_header(box, ncomp).encode("ascii")
    payload = np.ascontiguousarray(
        np.stack([np.asfortranarray(data[c]).ravel(order="F") for c in range(ncomp)])
    ).astype("<f8").tobytes()
    return header + payload


def decode_fab_header(line: str) -> Tuple[Box, int]:
    """Parse a FAB header line back into (box, ncomp).

    The real-number descriptor ends with ")))"; the box spec and the
    component count follow it.
    """
    rest = line[line.index(")))") + 3 :]  # "((0,0) (31,31) (0,0)) 24"
    body, _, ncomp_s = rest.rpartition(")")
    pieces = body.replace("(", " ").replace(")", " ").split()
    lo = tuple(int(v) for v in pieces[0].split(","))
    hi = tuple(int(v) for v in pieces[1].split(","))
    return Box((lo[0], lo[1]), (hi[0], hi[1])), int(ncomp_s.strip())
