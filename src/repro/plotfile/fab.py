"""On-disk FAB encoding (AMReX ``FArrayBox`` binary format).

Each grid's data is stored in a ``Cell_D_xxxxx`` file as an ASCII FAB
header line followed by raw doubles.  We reproduce the real format so
that the byte accounting (and the real-filesystem writer) matches what
Castro produces on Summit.

Size accounting is *closed form*: :func:`fab_nbytes` computes the header
length arithmetically (digit counts of the box corners and component
count) instead of rendering and encoding the header text, and
:func:`fab_nbytes_array` does the same for a whole level of boxes in one
vectorized pass.  ``fab_header`` remains the authoritative encoder; the
equivalence suite pins the arithmetic byte-exact against it.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..amr.box import Box

__all__ = [
    "fab_header",
    "fab_nbytes",
    "fab_nbytes_array",
    "encode_fab",
    "decode_fab_header",
]

# The native-double descriptor AMReX writes on little-endian machines.
_REAL_DESCRIPTOR = (
    "FAB ((8, (64 11 52 0 1 12 0 1023)),(8, (8 7 6 5 4 3 2 1)))"
)
_DESC_LEN = len(_REAL_DESCRIPTOR)

# Fixed characters of the box spec ``(({a},{b}) ({c},{d}) (0,0))``
# besides the four corner numbers: "((" + "," + ") (" + "," + ") (0,0))".
_BOXSTR_FIXED = 2 + 1 + 3 + 1 + 8

# Powers of ten for vectorized decimal digit counting (int64 range).
_POW10 = 10 ** np.arange(1, 19, dtype=np.int64)


def fab_header(box: Box, ncomp: int) -> str:
    """ASCII header line for one FAB (AMReX ``FArrayBox::writeOn``)."""
    lo = box.lo
    hi = box.hi
    # AMReX box format: ((lo) (hi) (type)) with cell-centered type (0,0).
    boxstr = f"(({lo[0]},{lo[1]}) ({hi[0]},{hi[1]}) (0,0))"
    return f"{_REAL_DESCRIPTOR}{boxstr} {ncomp}\n"


def fab_nbytes(box: Box, ncomp: int) -> int:
    """Total on-disk bytes of one FAB: header + ncomp*numpts doubles.

    Computed arithmetically — no header text is rendered.  ``len(str(n))``
    counts decimal digits (including a ``-`` sign for negative corners).
    """
    header_len = (
        _DESC_LEN
        + _BOXSTR_FIXED
        + len(str(box.lo[0]))
        + len(str(box.lo[1]))
        + len(str(box.hi[0]))
        + len(str(box.hi[1]))
        + 1  # space before ncomp
        + len(str(int(ncomp)))
        + 1  # trailing newline
    )
    return header_len + box.numpts * ncomp * 8


def _ndigits(a: np.ndarray) -> np.ndarray:
    """Decimal character count of each int (``-`` sign included)."""
    a = np.asarray(a, dtype=np.int64)
    return 1 + np.searchsorted(_POW10, np.abs(a), side="right") + (a < 0)


def fab_nbytes_array(
    los: np.ndarray, his: np.ndarray, numpts: np.ndarray, ncomp: int
) -> np.ndarray:
    """On-disk bytes of a whole level's FABs in one vectorized pass.

    Parameters
    ----------
    los / his:
        ``(n, 2)`` int arrays of box corners (``BoxArray.corners()``).
    numpts:
        ``(n,)`` per-box cell counts (``BoxArray.box_sizes()``).
    ncomp:
        Components per FAB.

    Returns ``(n,)`` int64; entry ``k`` equals ``fab_nbytes(ba[k], ncomp)``.
    """
    los = np.asarray(los, dtype=np.int64).reshape(-1, 2)
    his = np.asarray(his, dtype=np.int64).reshape(-1, 2)
    header_len = (
        _DESC_LEN
        + _BOXSTR_FIXED
        + 2  # space before ncomp + trailing newline
        + len(str(int(ncomp)))
        + _ndigits(los[:, 0])
        + _ndigits(los[:, 1])
        + _ndigits(his[:, 0])
        + _ndigits(his[:, 1])
    )
    return header_len + np.asarray(numpts, dtype=np.int64) * (int(ncomp) * 8)


def encode_fab(box: Box, data: np.ndarray) -> bytes:
    """Serialize data of shape (ncomp, nx, ny) to the on-disk FAB bytes.

    Component-major, Fortran order within each component, matching
    AMReX's column-major storage.  The payload is written straight into
    one preallocated buffer — one strided copy per component, no
    ``stack``/``asfortranarray``/``astype`` intermediate chain.
    """
    ncomp = data.shape[0]
    nx, ny = box.shape
    if data.shape != (ncomp, nx, ny):
        raise ValueError(f"data shape {data.shape} does not match box {box} / ncomp {ncomp}")
    header = fab_header(box, ncomp).encode("ascii")
    out = bytearray(len(header) + ncomp * nx * ny * 8)
    out[: len(header)] = header
    payload = np.frombuffer(
        memoryview(out), dtype="<f8", count=ncomp * nx * ny, offset=len(header)
    ).reshape(ncomp, ny, nx)
    payload[...] = np.swapaxes(data, 1, 2)
    return bytes(out)


def decode_fab_header(line: str) -> Tuple[Box, int]:
    """Parse a FAB header line back into (box, ncomp).

    The real-number descriptor ends with ")))"; the box spec and the
    component count follow it.
    """
    rest = line[line.index(")))") + 3 :]  # "((0,0) (31,31) (0,0)) 24"
    body, _, ncomp_s = rest.rpartition(")")
    pieces = body.replace("(", " ").replace(")", " ").split()
    lo = tuple(int(v) for v in pieces[0].split(","))
    hi = tuple(int(v) for v in pieces[1].split(","))
    return Box((lo[0], lo[1]), (hi[0], hi[1])), int(ncomp_s.strip())
