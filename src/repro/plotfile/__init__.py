"""AMReX plotfile format: writer, reader, FAB encoding, metadata.

Reproduces the Castro analysis-output structure of the paper's Fig. 2:
``<plt>NNNNN/{Header, job_info, Level_i/{Cell_H, Cell_D_xxxxx}}`` with
one ``Cell_D`` file per MPI task per level (N-to-N).
"""

from .cellh import FabLocation, build_cellh_text
from .checkpoint import CheckpointSpec, checkpoint_name, write_checkpoint
from .derive import derive_fields
from .fab import decode_fab_header, encode_fab, fab_header, fab_nbytes
from .header import PLOTFILE_VERSION, build_header_text, build_job_info_text
from .reader import LevelInfo, PlotfileInfo, inspect_plotfile, list_plotfiles
from .varlist import DERIVED_VARS, N_PLOT_VARS_ALL, STATE_VARS, plot_variables
from .writer import PlotfileSpec, plotfile_name, write_plotfile

__all__ = [
    "FabLocation",
    "build_cellh_text",
    "CheckpointSpec",
    "checkpoint_name",
    "write_checkpoint",
    "derive_fields",
    "decode_fab_header",
    "encode_fab",
    "fab_header",
    "fab_nbytes",
    "PLOTFILE_VERSION",
    "build_header_text",
    "build_job_info_text",
    "LevelInfo",
    "PlotfileInfo",
    "inspect_plotfile",
    "list_plotfiles",
    "DERIVED_VARS",
    "N_PLOT_VARS_ALL",
    "STATE_VARS",
    "plot_variables",
    "PlotfileSpec",
    "plotfile_name",
    "write_plotfile",
]
