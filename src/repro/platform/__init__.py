"""Pluggable machine registry: Platform specs + storage-model dispatch.

``get_platform("frontier")`` (or any registered name) returns a
:class:`~repro.platform.machine.Platform` — nodes, cores, memory,
default rank packing, and a filesystem spec that knows how to build the
matching :class:`~repro.iosim.storage.StorageModel` flavor.  See
``docs/PLATFORMS.md`` for the registry contents, the per-flavor model
math, and how to add a machine.
"""

from .builtin import (
    BURST_BUFFER_PLATFORM,
    FRONTIER_PLATFORM,
    SUMMIT_PLATFORM,
    WORKSTATION_PLATFORM,
)
from .machine import (
    DEFAULT_MACHINE,
    PLATFORM_REGISTRY,
    FilesystemSpec,
    Platform,
    UnknownMachineError,
    available_platforms,
    get_platform,
    register_platform,
)

__all__ = [
    "DEFAULT_MACHINE",
    "PLATFORM_REGISTRY",
    "FilesystemSpec",
    "Platform",
    "UnknownMachineError",
    "available_platforms",
    "get_platform",
    "register_platform",
    "SUMMIT_PLATFORM",
    "FRONTIER_PLATFORM",
    "BURST_BUFFER_PLATFORM",
    "WORKSTATION_PLATFORM",
]
