"""The Platform abstraction: what machine is this campaign running on?

The paper's closing pitch is that a calibrated proxy becomes "a powerful
predictive tool for autotuning" — which only pays off if the model can
answer *cross-machine* questions.  A :class:`Platform` bundles the
static machine description (nodes, cores, memory, injection bandwidth)
with a :class:`FilesystemSpec` describing the storage flavor, and a
string-keyed registry lets every layer above (campaign cases, the
predictor, the CLI's ``--machine`` flag, analysis comparisons) treat the
machine as one more sweep axis.

The registry ships four machines (see :mod:`repro.platform.builtin`);
:func:`register_platform` adds site-specific ones::

    from repro.platform import FilesystemSpec, Platform, register_platform

    register_platform(Platform(
        name="mycluster",
        description="Our 128-node Lustre cluster",
        total_nodes=128, cores_per_node=64, gpus_per_node=0,
        node_memory_gb=256, default_ranks_per_node=8,
        filesystem=FilesystemSpec(
            flavor="lustre", stream_bandwidth=2e9, node_bandwidth=12e9,
            metadata_latency=1e-3, aggregate_bandwidth=2e11,
            ost_count=64, stripe_count=2, ost_bandwidth=6e9,
        ),
    ))
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Union

from ..iosim.storage import (
    BurstBufferStorageModel,
    LustreStorageModel,
    StorageModel,
)
from ..parallel.topology import JobTopology

__all__ = [
    "FilesystemSpec",
    "Platform",
    "PLATFORM_REGISTRY",
    "DEFAULT_MACHINE",
    "UnknownMachineError",
    "register_platform",
    "get_platform",
    "available_platforms",
]


class UnknownMachineError(KeyError, ValueError):
    """An unregistered machine name.

    Subclasses both ``KeyError`` (a registry lookup miss) and
    ``ValueError`` (an invalid parameter), so either handler convention
    catches it, and renders its message plain instead of KeyError's
    repr-quoted form.
    """

    def __str__(self) -> str:
        return self.args[0] if self.args else ""

DEFAULT_MACHINE = "summit"

#: filesystem flavor -> StorageModel flavor (nvme shares the GPFS math:
#: one shared device per node is exactly the shared-injection law).
FLAVORS = ("gpfs", "lustre", "burst-buffer", "nvme")


@dataclass(frozen=True)
class FilesystemSpec:
    """Storage-side description of a platform, by filesystem flavor.

    The first four fields feed every flavor; the ``ost_*``/``stripe_*``
    fields only the ``lustre`` flavor and the ``drain_*``/``bb_*``
    fields only the ``burst-buffer`` flavor (where
    ``stream_bandwidth``/``node_bandwidth`` describe the node-local SSD
    tier).  ``aggregate_bandwidth`` is the published machine-wide figure
    kept for reporting; the timing models work from the per-node view.
    """

    flavor: str
    stream_bandwidth: float
    node_bandwidth: float
    metadata_latency: float
    aggregate_bandwidth: float = 0.0
    # lustre
    ost_count: int = 0
    stripe_count: int = 0
    ost_bandwidth: float = 0.0
    # burst-buffer
    drain_bandwidth: float = 0.0
    bb_capacity_bytes: float = 0.0
    drain_overlap: float = 1.0

    def __post_init__(self) -> None:
        if self.flavor not in FLAVORS:
            raise ValueError(
                f"unknown filesystem flavor {self.flavor!r}; "
                f"choose from: {', '.join(FLAVORS)}"
            )
        # Fail at construction, not at first use: building the model
        # runs the flavor's named parameter validation, so a
        # misconfigured registry entry errors where it is written.
        self.storage_model(variability=0.0)

    def storage_model(
        self, variability: float = 0.15, seed: int = 12345
    ) -> StorageModel:
        """Instantiate the timing model of this flavor.

        Parameter validation (positive bandwidths, non-negative latency
        and variability) happens in the model constructors, with errors
        naming the offending field.
        """
        common = dict(
            stream_bandwidth=self.stream_bandwidth,
            node_bandwidth=self.node_bandwidth,
            metadata_latency=self.metadata_latency,
            variability=variability,
            seed=seed,
        )
        if self.flavor == "lustre":
            return LustreStorageModel(
                ost_count=self.ost_count,
                stripe_count=self.stripe_count,
                ost_bandwidth=self.ost_bandwidth,
                **common,
            )
        if self.flavor == "burst-buffer":
            return BurstBufferStorageModel(
                drain_bandwidth=self.drain_bandwidth,
                bb_capacity_bytes=self.bb_capacity_bytes,
                drain_overlap=self.drain_overlap,
                **common,
            )
        return StorageModel(**common)


@dataclass(frozen=True)
class Platform:
    """Static description of one machine: compute envelope + filesystem."""

    name: str
    description: str
    total_nodes: int
    cores_per_node: int
    gpus_per_node: int
    node_memory_gb: int
    default_ranks_per_node: int
    filesystem: FilesystemSpec

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("platform name cannot be empty")
        for fld in ("total_nodes", "cores_per_node", "node_memory_gb",
                    "default_ranks_per_node"):
            if getattr(self, fld) < 1:
                raise ValueError(f"{fld} must be >= 1, got {getattr(self, fld)}")
        if self.gpus_per_node < 0:
            raise ValueError(f"gpus_per_node cannot be negative, got {self.gpus_per_node}")

    # ------------------------------------------------------------------
    def max_fraction_nodes(self, fraction: float) -> int:
        """Nodes available when using a fraction of the machine.

        Always at least 1: a tiny allocation (e.g. ``1/5000`` of Summit)
        is still one node, not zero.
        """
        if not (0 < fraction <= 1):
            raise ValueError("fraction must be in (0, 1]")
        return max(1, int(self.total_nodes * fraction))

    def storage_model(
        self, variability: float = 0.15, seed: int = 12345
    ) -> StorageModel:
        """The machine's filesystem timing model (flavor-dispatched)."""
        return self.filesystem.storage_model(variability=variability, seed=seed)

    def check_nodes(self, nnodes: int) -> None:
        """Raise if a job's node count exceeds the machine's."""
        if nnodes > self.total_nodes:
            raise ValueError(
                f"{self.name} has {self.total_nodes} nodes, requested {nnodes}"
            )

    def topology(self, nprocs: int, nnodes: int) -> JobTopology:
        """An explicit job shape, validated against the machine size."""
        self.check_nodes(nnodes)
        return JobTopology(nprocs, nnodes)

    def default_topology(self, nprocs: int) -> JobTopology:
        """Default packing: ``default_ranks_per_node`` ranks per node,
        clamped to the machine's node count (a workstation keeps every
        rank on its one node)."""
        topo = JobTopology.summit_default(nprocs, self.default_ranks_per_node)
        if topo.nnodes <= self.total_nodes:
            return topo
        return JobTopology(nprocs, self.total_nodes)


# ----------------------------------------------------------------------
PLATFORM_REGISTRY: Dict[str, Platform] = {}


def register_platform(platform: Platform, overwrite: bool = False) -> Platform:
    """Add a machine to the registry (``overwrite=True`` to replace)."""
    if platform.name in PLATFORM_REGISTRY and not overwrite:
        raise ValueError(
            f"platform {platform.name!r} is already registered "
            f"(pass overwrite=True to replace it)"
        )
    PLATFORM_REGISTRY[platform.name] = platform
    return platform


def get_platform(machine: Union[str, Platform, None] = None) -> Platform:
    """Resolve a machine name to its :class:`Platform`.

    ``None`` resolves to :data:`DEFAULT_MACHINE` (summit — the paper's
    machine and the repo's historical behavior); a :class:`Platform`
    instance passes through, so APIs can accept either.
    """
    if machine is None:
        machine = DEFAULT_MACHINE
    if isinstance(machine, Platform):
        return machine
    try:
        return PLATFORM_REGISTRY[machine]
    except KeyError:
        raise UnknownMachineError(
            f"unknown machine {machine!r}; registered: "
            f"{', '.join(available_platforms())}"
        ) from None


def available_platforms() -> List[str]:
    """Sorted names of every registered machine."""
    return sorted(PLATFORM_REGISTRY)
