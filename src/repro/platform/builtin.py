"""The built-in machine registry entries.

Four machines spanning the filesystem flavors the storage hierarchy
models.  ``summit`` reproduces the repo's historical constants exactly
(same numbers as the old ``repro.iosim.summit.SUMMIT`` singleton and
``StorageModel.summit_alpine`` — pinned bit-for-bit by
``tests/test_platform.py``); the others are representative published
figures scaled to the per-node view the timing models consume, not
benchmarked ground truth.
"""

from __future__ import annotations

from .machine import FilesystemSpec, Platform, register_platform

__all__ = ["SUMMIT_PLATFORM", "FRONTIER_PLATFORM", "BURST_BUFFER_PLATFORM",
           "WORKSTATION_PLATFORM"]

# OLCF Summit + Alpine (GPFS): the paper's machine.  2.5 TB/s aggregate
# over 4608 nodes; ranks on a node share ~12.5 GB/s injection, single
# streams see ~1.5 GB/s.  default_ranks_per_node=2 mirrors the paper's
# Table-III pairings (32 tasks on 2 nodes, 1024 on 512).
SUMMIT_PLATFORM = register_platform(Platform(
    name="summit",
    description="OLCF Summit + Alpine (GPFS, shared injection)",
    total_nodes=4608,
    cores_per_node=42,
    gpus_per_node=6,
    node_memory_gb=512,
    default_ranks_per_node=2,
    filesystem=FilesystemSpec(
        flavor="gpfs",
        stream_bandwidth=1.5e9,
        node_bandwidth=12.5e9,
        metadata_latency=2.0e-3,
        aggregate_bandwidth=2.5e12,
    ),
))

# OLCF Frontier + Orion (Lustre): 9408 nodes on Slingshot (~25 GB/s
# injection), writes striped over a large OST pool with per-OST
# contention.  stripe_count=4 is a typical progressive-file-layout
# setting for plotfile-sized writes.
FRONTIER_PLATFORM = register_platform(Platform(
    name="frontier",
    description="OLCF Frontier + Orion (Lustre, striped OSTs)",
    total_nodes=9408,
    cores_per_node=64,
    gpus_per_node=8,
    node_memory_gb=512,
    default_ranks_per_node=8,
    filesystem=FilesystemSpec(
        flavor="lustre",
        stream_bandwidth=2.0e9,
        node_bandwidth=25.0e9,
        metadata_latency=1.5e-3,
        aggregate_bandwidth=1.0e13,
        ost_count=450,
        stripe_count=4,
        ost_bandwidth=1.0e10,
    ),
))

# A generic burst-buffer machine (Summit-class node count, node-local
# NVMe absorbing bursts, async drain into the PFS) — the two-tier
# pattern of Cori/Trinity-style systems.  stream/node bandwidth describe
# the SSD tier; each node's 1.6 TB buffer drains at 2 GB/s.
BURST_BUFFER_PLATFORM = register_platform(Platform(
    name="burst-buffer",
    description="Generic burst-buffer machine (node-local SSD, async drain)",
    total_nodes=1024,
    cores_per_node=48,
    gpus_per_node=4,
    node_memory_gb=256,
    default_ranks_per_node=4,
    filesystem=FilesystemSpec(
        flavor="burst-buffer",
        stream_bandwidth=2.5e9,
        node_bandwidth=6.0e9,
        metadata_latency=5.0e-4,
        aggregate_bandwidth=2.0e9 * 1024,
        drain_bandwidth=2.0e9,
        bb_capacity_bytes=1.6e12,
        drain_overlap=1.0,
    ),
))

# A single-node NVMe workstation: every rank shares one ~3 GB/s device
# (the shared-injection law with node == machine), metadata nearly free.
WORKSTATION_PLATFORM = register_platform(Platform(
    name="workstation",
    description="Single-node workstation (local NVMe)",
    total_nodes=1,
    cores_per_node=16,
    gpus_per_node=1,
    node_memory_gb=64,
    default_ranks_per_node=16,
    filesystem=FilesystemSpec(
        flavor="nvme",
        stream_bandwidth=3.0e9,
        node_bandwidth=3.0e9,
        metadata_latency=1.0e-4,
        aggregate_bandwidth=3.0e9,
    ),
))
