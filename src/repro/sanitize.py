"""Runtime cache/aliasing sanitizer for the plan-cache era.

The static side of the correctness tooling (``tools/lint``) proves
cached buffers are *frozen at the source*; this module is the dynamic
side: with ``REPRO_SANITIZE=1`` in the environment, the plan caches and
the service LRU actively defend their invariants at runtime —

- every ndarray entering a cached payload is made read-only at insert,
  so aliasing writes fault at the write site instead of corrupting a
  future replay;
- plan payloads are checksummed when built and re-verified when
  replayed, so any drift between build and replay raises
  :class:`SanitizeError` at the replay site;
- the LRU asserts its size bound on every insert.

The freeze helpers (:func:`frozen`, :func:`freeze_payload`) are safe to
call unconditionally — freezing is a flag flip, not a copy — and some
call sites do; only the *checksum* and *assert* layers are gated on
:func:`enabled` because they cost real time on hot paths.

Everything here is stdlib + numpy; importing this module never reads
the environment at import time (``enabled()`` is a live check, so tests
can flip ``REPRO_SANITIZE`` per-case with ``monkeypatch``).
"""

from __future__ import annotations

import os
import zlib
from typing import Any, Optional, Set

import numpy as np

__all__ = [
    "SanitizeError",
    "enabled",
    "frozen",
    "freeze_payload",
    "checksum",
    "check",
]


class SanitizeError(AssertionError):
    """A sanitizer invariant failed (cache drift, aliasing, size bound).

    Subclasses ``AssertionError`` on purpose: a tripped sanitizer means
    the *program* is wrong, not the input, and existing ``except
    Exception`` recovery paths in the campaign layer still record it
    with a full traceback.
    """


def enabled() -> bool:
    """True when ``REPRO_SANITIZE`` is set to anything but ``''``/``0``."""
    return os.environ.get("REPRO_SANITIZE", "") not in ("", "0")


def frozen(arr: np.ndarray) -> np.ndarray:
    """Make ``arr`` read-only in place and return it.

    The ``setflags(write=False)`` idiom from ``BoxArray.corners()`` and
    ``iosim.darshan._readonly`` as a one-word wrapper, so plan
    constructors read ``self.sizes = frozen(np.add.reduceat(...))``.
    """
    arr.setflags(write=False)
    return arr


_FREEZE_MAX_DEPTH = 4


def freeze_payload(obj: Any, _depth: int = 0,
                   _seen: Optional[Set[int]] = None) -> Any:
    """Recursively freeze every ndarray reachable from ``obj``.

    Walks tuples/lists/dicts and plain-object ``__dict__``/``__slots__``
    attributes to a small fixed depth; cycles and repeats are skipped.
    Returns ``obj`` (freezing is in place, nothing is copied).
    """
    if _seen is None:
        _seen = set()
    if id(obj) in _seen or _depth > _FREEZE_MAX_DEPTH:
        return obj
    _seen.add(id(obj))
    if isinstance(obj, np.ndarray):
        obj.setflags(write=False)
        return obj
    if isinstance(obj, (tuple, list)):
        for item in obj:
            freeze_payload(item, _depth + 1, _seen)
        return obj
    if isinstance(obj, dict):
        for value in obj.values():
            freeze_payload(value, _depth + 1, _seen)
        return obj
    state = getattr(obj, "__dict__", None)
    if isinstance(state, dict):
        for value in state.values():
            freeze_payload(value, _depth + 1, _seen)
    for slot in getattr(type(obj), "__slots__", ()):
        try:
            freeze_payload(getattr(obj, slot), _depth + 1, _seen)
        except AttributeError:
            continue
    return obj


def checksum(obj: Any) -> int:
    """Cheap structural fingerprint of a plan payload (crc32).

    ndarrays hash their raw bytes; containers hash element-wise; other
    values hash their ``repr``.  Collisions are astronomically unlikely
    for the "did someone mutate this cached plan" question this answers
    — it is a tripwire, not a cryptographic commitment.
    """
    return _crc(obj, 0)


def _crc(obj: Any, acc: int) -> int:
    if isinstance(obj, np.ndarray):
        acc = zlib.crc32(str(obj.shape).encode(), acc)
        acc = zlib.crc32(obj.dtype.str.encode(), acc)
        return zlib.crc32(np.ascontiguousarray(obj).tobytes(), acc)
    if isinstance(obj, (tuple, list)):
        acc = zlib.crc32(b"(", acc)
        for item in obj:
            acc = _crc(item, acc)
        return zlib.crc32(b")", acc)
    if isinstance(obj, dict):
        acc = zlib.crc32(b"{", acc)
        for key in sorted(obj, key=repr):
            acc = _crc(key, acc)
            acc = _crc(obj[key], acc)
        return zlib.crc32(b"}", acc)
    return zlib.crc32(repr(obj).encode(), acc)


def check(cond: bool, message: str) -> None:
    """Raise :class:`SanitizeError` with ``message`` unless ``cond``.

    Call only under :func:`enabled` — the caller owns the gate so that
    the condition expression itself is never evaluated in normal runs.
    """
    if not cond:
        raise SanitizeError(message)
