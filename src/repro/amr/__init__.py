"""Block-structured AMR substrate (AMReX re-implementation in Python).

Provides the index-space and mesh machinery the paper's AMReX-Castro
runs depend on: boxes, box arrays, geometry, gradient tagging,
Berger–Rigoutsos clustering, grid generation with blocking factor and
max grid size, distribution mappings, multifabs and the regridding
hierarchy.
"""

from .box import Box, bounding_box, coarsen_index, refine_index
from .boxarray import BoxArray
from .cluster import ClusterParams, berger_rigoutsos, grid_efficiency
from .distribution import (
    DistributionMapping,
    knapsack_map,
    make_distribution,
    morton_key,
    rank_loads,
    round_robin_map,
    sfc_map,
)
from .geometry import CoordSys, Geometry
from .hilbert import hilbert_key, hilbert_map
from .grid import GridParams, align_to_blocking_factor, chop_to_max_size, make_level_grids
from .hierarchy import AmrHierarchy, AmrParams, LevelState
from .interp import prolong_bilinear, prolong_constant, restrict_average
from .multifab import Fab, MultiFab, regrid_multifab
from .tagging import TagCriteria, buffer_tags, tag_gradient, tagged_boxes_1cell

__all__ = [
    "Box",
    "BoxArray",
    "bounding_box",
    "coarsen_index",
    "refine_index",
    "ClusterParams",
    "berger_rigoutsos",
    "grid_efficiency",
    "DistributionMapping",
    "knapsack_map",
    "make_distribution",
    "morton_key",
    "rank_loads",
    "round_robin_map",
    "sfc_map",
    "CoordSys",
    "Geometry",
    "hilbert_key",
    "hilbert_map",
    "GridParams",
    "align_to_blocking_factor",
    "chop_to_max_size",
    "make_level_grids",
    "AmrHierarchy",
    "AmrParams",
    "LevelState",
    "prolong_bilinear",
    "prolong_constant",
    "restrict_average",
    "Fab",
    "MultiFab",
    "regrid_multifab",
    "TagCriteria",
    "buffer_tags",
    "tag_gradient",
    "tagged_boxes_1cell",
]
