"""Inter-level transfer operators: prolongation and restriction.

Used when a regrid creates new fine boxes (fill from coarse, piecewise
constant or bilinear) and when fine solutions are averaged down onto the
coarse level (conservative averaging), as in AMReX's ``average_down`` and
``FillPatch`` machinery.
"""

from __future__ import annotations

import numpy as np

__all__ = ["prolong_constant", "prolong_bilinear", "restrict_average"]


def prolong_constant(coarse: np.ndarray, ratio: int) -> np.ndarray:
    """Piecewise-constant injection: each coarse cell -> ratio x ratio block."""
    if coarse.ndim != 2:
        raise ValueError("prolong_constant expects 2-D input")
    return np.repeat(np.repeat(coarse, ratio, axis=0), ratio, axis=1)


def prolong_bilinear(coarse: np.ndarray, ratio: int) -> np.ndarray:
    """Cell-centered bilinear interpolation to the fine grid.

    Fine cell centers sit at fractional coarse coordinates
    ``(i + (k + 0.5)/ratio - 0.5)``; values are clamped at the domain
    edge (one-sided), matching AMReX's ``CellBilinear`` on interiors.
    """
    if coarse.ndim != 2:
        raise ValueError("prolong_bilinear expects 2-D input")
    ncx, ncy = coarse.shape
    nfx, nfy = ncx * ratio, ncy * ratio
    # Fractional coarse-space coordinates of fine cell centers.
    fx = (np.arange(nfx) + 0.5) / ratio - 0.5
    fy = (np.arange(nfy) + 0.5) / ratio - 0.5
    i0 = np.clip(np.floor(fx).astype(int), 0, ncx - 2) if ncx > 1 else np.zeros(nfx, int)
    j0 = np.clip(np.floor(fy).astype(int), 0, ncy - 2) if ncy > 1 else np.zeros(nfy, int)
    tx = np.clip(fx - i0, 0.0, 1.0) if ncx > 1 else np.zeros(nfx)
    ty = np.clip(fy - j0, 0.0, 1.0) if ncy > 1 else np.zeros(nfy)
    i1 = np.minimum(i0 + 1, ncx - 1)
    j1 = np.minimum(j0 + 1, ncy - 1)
    c00 = coarse[np.ix_(i0, j0)]
    c10 = coarse[np.ix_(i1, j0)]
    c01 = coarse[np.ix_(i0, j1)]
    c11 = coarse[np.ix_(i1, j1)]
    TX = tx[:, None]
    TY = ty[None, :]
    return (
        c00 * (1 - TX) * (1 - TY)
        + c10 * TX * (1 - TY)
        + c01 * (1 - TX) * TY
        + c11 * TX * TY
    )


def restrict_average(fine: np.ndarray, ratio: int) -> np.ndarray:
    """Conservative average-down: mean over each ratio x ratio block."""
    if fine.ndim != 2:
        raise ValueError("restrict_average expects 2-D input")
    nfx, nfy = fine.shape
    if nfx % ratio or nfy % ratio:
        raise ValueError(f"fine shape {fine.shape} not divisible by ratio {ratio}")
    ncx, ncy = nfx // ratio, nfy // ratio
    return fine.reshape(ncx, ratio, ncy, ratio).mean(axis=(1, 3))
