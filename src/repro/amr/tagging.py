"""Cell tagging for refinement (Castro-style error estimators).

Castro tags cells for refinement where density/pressure gradients exceed
thresholds.  We implement the same gradient-ratio criterion on arbitrary
2-D fields, plus helpers to buffer tags (``amr.n_error_buf``) and align
them to the blocking factor, as AMReX does before clustering.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from .box import Box

__all__ = ["TagCriteria", "tag_gradient", "buffer_tags", "tagged_boxes_1cell"]


@dataclass(frozen=True)
class TagCriteria:
    """Thresholds of the gradient error estimator.

    ``rel_gradient`` tags cell (i,j) when the max relative jump to a
    neighbour exceeds the threshold, mirroring Castro's ``denerr``/
    ``dengrad`` pairs.
    """

    rel_gradient: float = 0.25
    min_value: float = 1e-12


def tag_gradient(field: np.ndarray, criteria: TagCriteria = TagCriteria()) -> np.ndarray:
    """Boolean tag array, True where the relative gradient is large.

    Parameters
    ----------
    field:
        2-D array of a flow quantity (e.g. density) on a level patch.
    criteria:
        Thresholds; see :class:`TagCriteria`.
    """
    if field.ndim != 2:
        raise ValueError("tag_gradient expects a 2-D field")
    f = np.asarray(field, dtype=np.float64)
    denom = np.maximum(np.abs(f), criteria.min_value)
    jump = np.zeros_like(f)
    # Vectorized one-sided differences in the four directions.
    jump[:-1, :] = np.maximum(jump[:-1, :], np.abs(f[1:, :] - f[:-1, :]) / denom[:-1, :])
    jump[1:, :] = np.maximum(jump[1:, :], np.abs(f[1:, :] - f[:-1, :]) / denom[1:, :])
    jump[:, :-1] = np.maximum(jump[:, :-1], np.abs(f[:, 1:] - f[:, :-1]) / denom[:, :-1])
    jump[:, 1:] = np.maximum(jump[:, 1:], np.abs(f[:, 1:] - f[:, :-1]) / denom[:, 1:])
    return jump > criteria.rel_gradient


def buffer_tags(tags: np.ndarray, n_buf: int) -> np.ndarray:
    """Dilate the tag set by ``n_buf`` cells (AMReX ``n_error_buf``).

    The buffered set is the L1-ball dilation (the diamond of radius
    ``n_buf``), matching AMReX's behaviour.  Implementation notes: the
    iterated 4-neighbour shifted-OR used here was measured fastest —
    a single-pass shifted-OR over the full ``(2n+1)²`` diamond
    footprint does ``2n²+2n`` full-array ORs vs ``4n`` here, and both
    ``scipy.ndimage.maximum_filter`` (diamond footprint) and
    ``binary_dilation`` benched ~10x slower — so the passes reuse two
    ping-pong buffers (``copyto`` instead of a fresh allocation per
    pass) and ``n_buf == 1`` dilates straight into one buffer.
    """
    if n_buf <= 0:
        return tags.copy()
    out = tags.copy()
    out[:-1, :] |= tags[1:, :]
    out[1:, :] |= tags[:-1, :]
    out[:, :-1] |= tags[:, 1:]
    out[:, 1:] |= tags[:, :-1]
    if n_buf == 1:
        return out
    cur = np.empty_like(out)
    for _ in range(n_buf - 1):
        np.copyto(cur, out)
        cur[:-1, :] |= out[1:, :]
        cur[1:, :] |= out[:-1, :]
        cur[:, :-1] |= out[:, 1:]
        cur[:, 1:] |= out[:, :-1]
        out, cur = cur, out
    return out


def tagged_boxes_1cell(tags: np.ndarray, origin: Tuple[int, int] = (0, 0)) -> List[Box]:
    """Degenerate clustering: one 1x1 box per tagged cell.

    Useful as a ground-truth reference for the Berger–Rigoutsos tests.
    """
    ii, jj = np.nonzero(tags)
    return [
        Box((int(i) + origin[0], int(j) + origin[1]), (int(i) + origin[0], int(j) + origin[1]))
        for i, j in zip(ii, jj)
    ]
