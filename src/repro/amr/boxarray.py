"""Collections of boxes (AMReX ``BoxArray`` analogue).

A :class:`BoxArray` is an ordered list of disjoint boxes that together
describe the region covered by one AMR level.  It knows how to answer
coverage queries, intersect against other box arrays, and compute basic
statistics that feed the I/O accounting (cells per box, cells total).
"""

from __future__ import annotations

import itertools
from typing import Iterable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from .box import Box, bounding_box

__all__ = ["BoxArray"]

_token_counter = itertools.count(1)


class BoxArray:
    """An ordered collection of disjoint 2-D boxes.

    Parameters
    ----------
    boxes:
        The member boxes.  Disjointness is the caller's responsibility
        for performance; :meth:`validate_disjoint` checks it explicitly.
    """

    def __init__(self, boxes: Iterable[Box] = ()) -> None:
        self._boxes: List[Box] = list(boxes)
        # Identity token: BoxArrays are immutable after construction, so
        # a per-instance generation number is a cheap cache key for
        # layout-derived plans (ghost-exchange plans, distribution
        # reuse).  Two arrays with equal boxes still get distinct
        # tokens; equality of *content* is ``__eq__``.
        self._token: int = next(_token_counter)
        self._corners: Optional[Tuple[np.ndarray, np.ndarray]] = None
        self._numpts: Optional[int] = None

    # ------------------------------------------------------------------
    # container protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._boxes)

    def __iter__(self) -> Iterator[Box]:
        return iter(self._boxes)

    def __getitem__(self, i: int) -> Box:
        return self._boxes[i]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, BoxArray):
            return NotImplemented
        return self._boxes == other._boxes

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"BoxArray(n={len(self)}, cells={self.numpts})"

    @property
    def boxes(self) -> Sequence[Box]:
        return tuple(self._boxes)

    @property
    def token(self) -> int:
        """Per-instance identity/generation key for cached plans."""
        return self._token

    def same_boxes(self, other: "BoxArray") -> bool:
        """Content equality with an identity fast path.

        Used by the regrid amortization: comparing tokens first makes
        the common "layout unchanged, same object threaded through"
        case O(1) instead of an O(n) box-list compare.
        """
        return self._token == other._token or self._boxes == other._boxes

    # ------------------------------------------------------------------
    # metrics
    # ------------------------------------------------------------------
    @property
    def numpts(self) -> int:
        """Total cell count across all boxes."""
        if self._numpts is None:
            self._numpts = int(self.box_sizes().sum())
        return self._numpts

    def corners(self) -> Tuple[np.ndarray, np.ndarray]:
        """``(los, his)``: cached ``(n, 2)`` int64 corner arrays.

        Built once per instance (BoxArrays are immutable) — the
        substrate for vectorized per-box accounting such as
        :func:`repro.plotfile.fab.fab_nbytes_array`.  Callers must not
        mutate the returned arrays.
        """
        if self._corners is None:
            n = len(self._boxes)
            los = np.empty((n, 2), dtype=np.int64)
            his = np.empty((n, 2), dtype=np.int64)
            for k, b in enumerate(self._boxes):
                los[k] = b.lo
                his[k] = b.hi
            los.setflags(write=False)
            his.setflags(write=False)
            self._corners = (los, his)
        return self._corners

    def box_sizes(self) -> np.ndarray:
        """Array of per-box cell counts (int64)."""
        los, his = self.corners()
        return (his - los + 1).prod(axis=1)

    def minimal_box(self) -> Box:
        """Bounding box of the whole array."""
        return bounding_box(self._boxes)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def contains_point(self, pt: Tuple[int, int]) -> bool:
        return any(b.contains_point(pt) for b in self._boxes)

    def intersects(self, box: Box) -> bool:
        return any(b.intersects(box) for b in self._boxes)

    def intersections(self, box: Box) -> List[Tuple[int, Box]]:
        """All ``(index, overlap)`` pairs of member boxes meeting ``box``."""
        out: List[Tuple[int, Box]] = []
        for idx, b in enumerate(self._boxes):
            inter = b.intersection(box)
            if inter is not None:
                out.append((idx, inter))
        return out

    def covered_cells(self, box: Box) -> int:
        """Number of cells of ``box`` covered by this array.

        Member boxes are assumed disjoint, so overlaps add exactly once.
        """
        return sum(inter.numpts for _, inter in self.intersections(box))

    def contains_box(self, box: Box) -> bool:
        """True if every cell of ``box`` is covered."""
        return self.covered_cells(box) == box.numpts

    def complement_in(self, domain: Box) -> List[Box]:
        """Boxes covering ``domain`` minus this array (disjoint)."""
        remaining: List[Box] = [domain]
        for b in self._boxes:
            nxt: List[Box] = []
            for piece in remaining:
                nxt.extend(piece.difference(b))
            remaining = nxt
            if not remaining:
                break
        return remaining

    # ------------------------------------------------------------------
    # transformations
    # ------------------------------------------------------------------
    def coarsen(self, ratio: int) -> "BoxArray":
        return BoxArray(b.coarsen(ratio) for b in self._boxes)

    def refine(self, ratio: int) -> "BoxArray":
        return BoxArray(b.refine(ratio) for b in self._boxes)

    def grow(self, n: int) -> "BoxArray":
        return BoxArray(b.grow(n) for b in self._boxes)

    # ------------------------------------------------------------------
    # validation
    # ------------------------------------------------------------------
    def validate_disjoint(self) -> None:
        """Raise ``ValueError`` if any two member boxes overlap."""
        # O(n^2) but only used in tests / debug paths.
        for i in range(len(self._boxes)):
            for j in range(i + 1, len(self._boxes)):
                if self._boxes[i].intersects(self._boxes[j]):
                    raise ValueError(
                        f"boxes {i} and {j} overlap: "
                        f"{self._boxes[i]} & {self._boxes[j]}"
                    )

    def validate_inside(self, domain: Box) -> None:
        """Raise ``ValueError`` if any member box leaves ``domain``."""
        for i, b in enumerate(self._boxes):
            if not domain.contains(b):
                raise ValueError(f"box {i} = {b} not inside domain {domain}")
