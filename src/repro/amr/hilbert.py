"""Hilbert space-filling curve (the locality-optimal SFC alternative).

AMReX's ``DistributionMapping`` SFC strategy uses Morton ordering for
speed; the Hilbert curve gives strictly better locality (no long jumps
between quadrant boundaries).  Provided as an ablation axis for the
per-task I/O imbalance studies.
"""

from __future__ import annotations

from typing import List

from .boxarray import BoxArray
from .distribution import DistributionMapping

__all__ = ["hilbert_key", "hilbert_map"]


def hilbert_key(x: int, y: int, order: int = 16) -> int:
    """Distance along the order-``order`` Hilbert curve of cell (x, y).

    Standard rotate-and-flip construction; coordinates must satisfy
    ``0 <= x, y < 2**order``.
    """
    if x < 0 or y < 0:
        raise ValueError("hilbert_key requires non-negative coordinates")
    side = 1 << order
    if x >= side or y >= side:
        raise ValueError(f"coordinates must be < 2^{order}")
    rx = ry = 0
    d = 0
    s = side >> 1
    while s > 0:
        rx = 1 if (x & s) > 0 else 0
        ry = 1 if (y & s) > 0 else 0
        d += s * s * ((3 * rx) ^ ry)
        # rotate quadrant
        if ry == 0:
            if rx == 1:
                x = s - 1 - x
                y = s - 1 - y
            x, y = y, x
        s >>= 1
    return d


def hilbert_map(ba: BoxArray, nprocs: int) -> DistributionMapping:
    """Hilbert-ordered, weight-balanced contiguous chunking.

    Same chunking rule as :func:`~repro.amr.distribution.sfc_map`, with
    Hilbert distance replacing the Morton key.
    """
    n = len(ba)
    if n == 0:
        return DistributionMapping((), nprocs)
    keys = [hilbert_key(max(b.lo[0], 0), max(b.lo[1], 0), order=21) for b in ba]
    order = sorted(range(n), key=lambda k: keys[k])
    weights = ba.box_sizes()
    total = int(weights.sum())
    ranks = [0] * n
    acc = 0
    for k in order:
        w = int(weights[k])
        mid = acc + 0.5 * w
        ranks[k] = min(nprocs - 1, int(mid * nprocs / total)) if total > 0 else 0
        acc += w
    return DistributionMapping(tuple(ranks), nprocs)
