"""Berger–Rigoutsos clustering of tagged cells into boxes.

This is the algorithm AMReX uses (``MakeBoxes``/``ClusterList``) to turn a
scattered set of tagged cells into a small set of rectangular grids with a
minimum *grid efficiency* (fraction of cells inside a returned box that
are actually tagged).  The recursive split rules follow the published
algorithm:

1. Compute tag *signatures* (per-row and per-column tag counts) over the
   bounding box of the tags.
2. If efficiency is already acceptable, accept the bounding box.
3. Otherwise try to split at a *hole* (zero signature), else at the
   strongest *inflection point* of the signature's second difference,
   else bisect, and recurse on both halves.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from .box import Box

__all__ = ["berger_rigoutsos", "ClusterParams", "grid_efficiency"]


@dataclass(frozen=True)
class ClusterParams:
    """Knobs of the clustering pass.

    ``grid_eff`` matches ``amr.grid_eff`` (AMReX default 0.7); boxes stop
    splitting once at least this fraction of their cells is tagged.
    ``max_boxes`` is a safety valve for adversarial inputs.
    """

    grid_eff: float = 0.7
    min_side: int = 1
    max_boxes: int = 100_000


def grid_efficiency(tags: np.ndarray, box: Box, origin: Tuple[int, int]) -> float:
    """Fraction of cells of ``box`` (in tag-array coords) that are tagged."""
    sl = box.slices(origin)
    sub = tags[sl]
    if sub.size == 0:
        return 0.0
    return float(np.count_nonzero(sub)) / float(sub.size)


def _tag_bounding_box(tags: np.ndarray, box: Box, origin: Tuple[int, int]) -> Optional[Box]:
    """Smallest sub-box of ``box`` containing all its tags, or None."""
    sl = box.slices(origin)
    sub = tags[sl]
    ii, jj = np.nonzero(sub)
    if ii.size == 0:
        return None
    return Box(
        (box.lo[0] + int(ii.min()), box.lo[1] + int(jj.min())),
        (box.lo[0] + int(ii.max()), box.lo[1] + int(jj.max())),
    )


def _signatures(tags: np.ndarray, box: Box, origin: Tuple[int, int]) -> Tuple[np.ndarray, np.ndarray]:
    sl = box.slices(origin)
    sub = tags[sl].astype(np.int64)
    return sub.sum(axis=1), sub.sum(axis=0)


def _find_hole(sig: np.ndarray) -> Optional[int]:
    """Index (1..n-1) of a zero-signature split plane, preferring central."""
    zeros = np.nonzero(sig == 0)[0]
    # Interior zeros only: a zero at the edge can't split.
    zeros = zeros[(zeros > 0) & (zeros < len(sig) - 1)]
    if zeros.size == 0:
        return None
    center = (len(sig) - 1) / 2.0
    best = int(zeros[np.argmin(np.abs(zeros - center))])
    return best


def _find_inflection(sig: np.ndarray) -> Optional[Tuple[int, int]]:
    """Strongest sign change of the Laplacian of the signature.

    Returns ``(index, strength)`` where the split is between ``index-1``
    and ``index``; None when no inflection exists.
    """
    if len(sig) < 4:
        return None
    lap = sig[2:] - 2 * sig[1:-1] + sig[:-2]  # second difference, len n-2
    best_idx: Optional[int] = None
    best_strength = 0
    for k in range(len(lap) - 1):
        if lap[k] * lap[k + 1] < 0:
            strength = abs(int(lap[k]) - int(lap[k + 1]))
            if strength > best_strength:
                best_strength = strength
                best_idx = k + 2  # split plane between cells k+1 and k+2
    if best_idx is None:
        return None
    return best_idx, best_strength


def berger_rigoutsos(
    tags: np.ndarray,
    origin: Tuple[int, int] = (0, 0),
    params: ClusterParams = ClusterParams(),
) -> List[Box]:
    """Cluster a boolean tag array into boxes with minimum efficiency.

    Parameters
    ----------
    tags:
        2-D boolean array; ``tags[i, j]`` refers to cell
        ``(origin[0] + i, origin[1] + j)``.
    origin:
        Index-space coordinates of ``tags[0, 0]``.
    params:
        Efficiency target and limits.

    Returns
    -------
    list of Box
        Disjoint boxes covering every tagged cell, each with grid
        efficiency >= ``params.grid_eff`` (or unsplittable).
    """
    if tags.ndim != 2:
        raise ValueError("tags must be 2-D")
    if not tags.any():
        return []
    full = Box.from_size(origin, tags.shape)
    first = _tag_bounding_box(tags, full, origin)
    assert first is not None
    stack: List[Box] = [first]
    accepted: List[Box] = []
    while stack:
        if len(accepted) + len(stack) > params.max_boxes:
            # Give up splitting: accept everything left as-is.
            accepted.extend(stack)
            break
        box = stack.pop()
        eff = grid_efficiency(tags, box, origin)
        if eff >= params.grid_eff or box.numpts == 1:
            accepted.append(box)
            continue
        split = _choose_split(tags, box, origin, params)
        if split is None:
            accepted.append(box)
            continue
        axis, at = split
        left, right = box.chop(axis, at)
        for part in (left, right):
            shrunk = _tag_bounding_box(tags, part, origin)
            if shrunk is not None:
                stack.append(shrunk)
    accepted.sort()
    return accepted


def _choose_split(
    tags: np.ndarray, box: Box, origin: Tuple[int, int], params: ClusterParams
) -> Optional[Tuple[int, int]]:
    """Pick (axis, chop index) per the BR hole/inflection/bisect rules."""
    sig_i, sig_j = _signatures(tags, box, origin)
    nx, ny = box.shape
    # 1. Holes (prefer the longer axis's hole).
    candidates: List[Tuple[int, int, int]] = []  # (axis, at, priority)
    for axis, sig, n in ((0, sig_i, nx), (1, sig_j, ny)):
        if n < 2 * params.min_side:
            continue
        hole = _find_hole(sig)
        if hole is not None and params.min_side <= hole <= n - params.min_side:
            candidates.append((axis, box.lo[axis] + hole, n))
    if candidates:
        axis, at, _ = max(candidates, key=lambda c: c[2])
        return axis, at
    # 2. Inflection points: pick the strongest across both axes.
    best: Optional[Tuple[int, int, int]] = None  # (axis, at, strength)
    for axis, sig, n in ((0, sig_i, nx), (1, sig_j, ny)):
        if n < 2 * params.min_side:
            continue
        infl = _find_inflection(sig)
        if infl is not None:
            idx, strength = infl
            if params.min_side <= idx <= n - params.min_side:
                if best is None or strength > best[2]:
                    best = (axis, box.lo[axis] + idx, strength)
    if best is not None:
        return best[0], best[1]
    # 3. Bisect the long axis.
    axis = 0 if nx >= ny else 1
    n = box.shape[axis]
    if n < 2 * params.min_side or n < 2:
        return None
    return axis, box.lo[axis] + n // 2
