"""Physical-space geometry of an AMR level (AMReX ``Geometry`` analogue).

Maps the cell-index space of a level onto physical coordinates, given the
problem domain ``[prob_lo, prob_hi]`` and the level's index domain.  The
Sedov case in the paper uses ``prob_lo = (0, 0)``, ``prob_hi = (1, 1)``,
Cartesian coordinates (``geometry.coord_sys = 0``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple

import numpy as np

from .box import Box

__all__ = ["Geometry", "CoordSys"]


class CoordSys:
    """Coordinate-system identifiers matching AMReX integer codes."""

    CARTESIAN = 0
    CYLINDRICAL_RZ = 1
    SPHERICAL = 2


@dataclass(frozen=True)
class Geometry:
    """Physical geometry of a level.

    Parameters
    ----------
    domain:
        The index-space box of this level.
    prob_lo / prob_hi:
        Physical bounds of the problem domain.
    coord_sys:
        One of :class:`CoordSys` codes; only metadata here (the Sedov
        "cyl_in_cartcoords" case runs in Cartesian coordinates).
    periodic:
        Periodicity flags per dimension (the Sedov case is non-periodic).
    """

    domain: Box
    prob_lo: Tuple[float, float] = (0.0, 0.0)
    prob_hi: Tuple[float, float] = (1.0, 1.0)
    coord_sys: int = CoordSys.CARTESIAN
    periodic: Tuple[bool, bool] = (False, False)

    @property
    def cell_size(self) -> Tuple[float, float]:
        """Physical cell sizes ``(dx, dy)``."""
        nx, ny = self.domain.shape
        return (
            (self.prob_hi[0] - self.prob_lo[0]) / nx,
            (self.prob_hi[1] - self.prob_lo[1]) / ny,
        )

    @property
    def dx(self) -> float:
        return self.cell_size[0]

    @property
    def dy(self) -> float:
        return self.cell_size[1]

    def refine(self, ratio: int) -> "Geometry":
        """Geometry of the next finer level (same physical bounds)."""
        return Geometry(
            domain=self.domain.refine(ratio),
            prob_lo=self.prob_lo,
            prob_hi=self.prob_hi,
            coord_sys=self.coord_sys,
            periodic=self.periodic,
        )

    def cell_centers(self, box: Box) -> Tuple[np.ndarray, np.ndarray]:
        """Meshgrid arrays ``(X, Y)`` of cell-center coordinates of ``box``."""
        dx, dy = self.cell_size
        xs = self.prob_lo[0] + (np.arange(box.lo[0], box.hi[0] + 1) + 0.5) * dx
        ys = self.prob_lo[1] + (np.arange(box.lo[1], box.hi[1] + 1) + 0.5) * dy
        return np.meshgrid(xs, ys, indexing="ij")

    def cell_center(self, idx: Tuple[int, int]) -> Tuple[float, float]:
        dx, dy = self.cell_size
        return (
            self.prob_lo[0] + (idx[0] + 0.5) * dx,
            self.prob_lo[1] + (idx[1] + 0.5) * dy,
        )

    def cell_volume(self) -> float:
        """Cell volume (area in 2-D) — Cartesian only."""
        dx, dy = self.cell_size
        return dx * dy

    def physical_box(self, box: Box) -> Tuple[Tuple[float, float], Tuple[float, float]]:
        """Physical ``(lo, hi)`` corners of an index box."""
        dx, dy = self.cell_size
        lo = (
            self.prob_lo[0] + box.lo[0] * dx,
            self.prob_lo[1] + box.lo[1] * dy,
        )
        hi = (
            self.prob_lo[0] + (box.hi[0] + 1) * dx,
            self.prob_lo[1] + (box.hi[1] + 1) * dy,
        )
        return lo, hi
