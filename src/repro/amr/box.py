"""Index-space rectangles (AMReX ``Box`` analogue).

A :class:`Box` is a half-open axis-aligned rectangle in cell-index space,
``[lo, hi]`` inclusive on both ends, matching AMReX's cell-centered box
convention.  Boxes are the atoms of block-structured AMR: every grid at
every level is a box, and the clustering / chopping / distribution
machinery operates on boxes only.

All coordinates are small Python ints; box algebra is exact.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, List, Optional, Sequence, Tuple

__all__ = ["Box", "coarsen_index", "refine_index"]


def coarsen_index(i: int, ratio: int) -> int:
    """Coarsen a cell index by ``ratio`` (floor division, AMReX semantics).

    Works for negative indices too: ``coarsen_index(-1, 2) == -1``.
    """
    if ratio < 1:
        raise ValueError(f"refinement ratio must be >= 1, got {ratio}")
    return i // ratio


def refine_index(i: int, ratio: int) -> int:
    """Refine a cell index by ``ratio`` (lo-side convention)."""
    if ratio < 1:
        raise ValueError(f"refinement ratio must be >= 1, got {ratio}")
    return i * ratio


@dataclass(frozen=True, order=True)
class Box:
    """A 2-D cell-centered index box, inclusive bounds ``[lo, hi]``.

    Parameters
    ----------
    lo:
        Lower corner ``(i, j)`` in cell indices.
    hi:
        Upper corner ``(i, j)``, inclusive.  ``hi >= lo`` componentwise.
    """

    lo: Tuple[int, int]
    hi: Tuple[int, int]

    def __post_init__(self) -> None:
        if len(self.lo) != 2 or len(self.hi) != 2:
            raise ValueError("Box is 2-D: lo and hi must have length 2")
        if self.hi[0] < self.lo[0] or self.hi[1] < self.lo[1]:
            raise ValueError(f"invalid Box: hi {self.hi} < lo {self.lo}")
        # Normalize to plain int tuples so hashing/eq are stable even if
        # numpy integers are passed in.
        object.__setattr__(self, "lo", (int(self.lo[0]), int(self.lo[1])))
        object.__setattr__(self, "hi", (int(self.hi[0]), int(self.hi[1])))

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @staticmethod
    def from_size(lo: Tuple[int, int], size: Tuple[int, int]) -> "Box":
        """Box with lower corner ``lo`` and ``size`` cells per dimension."""
        if size[0] < 1 or size[1] < 1:
            raise ValueError(f"size must be positive, got {size}")
        return Box(lo, (lo[0] + size[0] - 1, lo[1] + size[1] - 1))

    @staticmethod
    def cell_centered(nx: int, ny: int) -> "Box":
        """The domain box ``[0, nx) x [0, ny)``."""
        return Box((0, 0), (nx - 1, ny - 1))

    # ------------------------------------------------------------------
    # geometry
    # ------------------------------------------------------------------
    @property
    def shape(self) -> Tuple[int, int]:
        """Number of cells per dimension."""
        return (self.hi[0] - self.lo[0] + 1, self.hi[1] - self.lo[1] + 1)

    @property
    def numpts(self) -> int:
        """Total number of cells."""
        nx, ny = self.shape
        return nx * ny

    @property
    def shortside(self) -> int:
        return min(self.shape)

    @property
    def longside(self) -> int:
        return max(self.shape)

    def contains_point(self, pt: Tuple[int, int]) -> bool:
        return (
            self.lo[0] <= pt[0] <= self.hi[0]
            and self.lo[1] <= pt[1] <= self.hi[1]
        )

    def contains(self, other: "Box") -> bool:
        """True if ``other`` is entirely inside this box."""
        return (
            self.lo[0] <= other.lo[0]
            and self.lo[1] <= other.lo[1]
            and self.hi[0] >= other.hi[0]
            and self.hi[1] >= other.hi[1]
        )

    def intersects(self, other: "Box") -> bool:
        return not (
            other.lo[0] > self.hi[0]
            or other.hi[0] < self.lo[0]
            or other.lo[1] > self.hi[1]
            or other.hi[1] < self.lo[1]
        )

    def intersection(self, other: "Box") -> Optional["Box"]:
        """The overlap box, or ``None`` when disjoint."""
        if not self.intersects(other):
            return None
        return Box(
            (max(self.lo[0], other.lo[0]), max(self.lo[1], other.lo[1])),
            (min(self.hi[0], other.hi[0]), min(self.hi[1], other.hi[1])),
        )

    def __and__(self, other: "Box") -> Optional["Box"]:
        return self.intersection(other)

    # ------------------------------------------------------------------
    # transformations
    # ------------------------------------------------------------------
    def shift(self, di: int, dj: int) -> "Box":
        return Box((self.lo[0] + di, self.lo[1] + dj), (self.hi[0] + di, self.hi[1] + dj))

    def grow(self, n: int) -> "Box":
        """Grow (or shrink, for negative ``n``) by ``n`` cells on all sides."""
        return Box(
            (self.lo[0] - n, self.lo[1] - n),
            (self.hi[0] + n, self.hi[1] + n),
        )

    def coarsen(self, ratio: int) -> "Box":
        """The coarse-level image of this box (AMReX ``coarsen``)."""
        return Box(
            (coarsen_index(self.lo[0], ratio), coarsen_index(self.lo[1], ratio)),
            (coarsen_index(self.hi[0], ratio), coarsen_index(self.hi[1], ratio)),
        )

    def refine(self, ratio: int) -> "Box":
        """The fine-level image: each coarse cell becomes ``ratio**2`` cells."""
        return Box(
            (refine_index(self.lo[0], ratio), refine_index(self.lo[1], ratio)),
            (
                refine_index(self.hi[0], ratio) + ratio - 1,
                refine_index(self.hi[1], ratio) + ratio - 1,
            ),
        )

    def is_coarsenable(self, ratio: int) -> bool:
        """True if refine(coarsen(b)) == b, i.e. the box aligns to ``ratio``."""
        return self.coarsen(ratio).refine(ratio) == self

    # ------------------------------------------------------------------
    # decomposition
    # ------------------------------------------------------------------
    def chop(self, axis: int, at: int) -> Tuple["Box", "Box"]:
        """Split into two boxes at cell index ``at`` along ``axis``.

        The first returned box ends at ``at - 1``, the second starts at
        ``at``.  ``at`` must lie strictly inside the box extent.
        """
        if axis not in (0, 1):
            raise ValueError(f"axis must be 0 or 1, got {axis}")
        if not (self.lo[axis] < at <= self.hi[axis]):
            raise ValueError(
                f"chop point {at} outside open interval "
                f"({self.lo[axis]}, {self.hi[axis]}] of axis {axis}"
            )
        if axis == 0:
            left = Box(self.lo, (at - 1, self.hi[1]))
            right = Box((at, self.lo[1]), self.hi)
        else:
            left = Box(self.lo, (self.hi[0], at - 1))
            right = Box((self.lo[0], at), self.hi)
        return left, right

    def difference(self, other: "Box") -> List["Box"]:
        """``self \\ other`` as a disjoint list of boxes (possibly empty)."""
        inter = self.intersection(other)
        if inter is None:
            return [self]
        if inter == self:
            return []
        pieces: List[Box] = []
        remaining = self
        # Peel slabs on each side of the intersection, axis by axis.
        for axis in (0, 1):
            if remaining.lo[axis] < inter.lo[axis]:
                low, remaining = remaining.chop(axis, inter.lo[axis])
                pieces.append(low)
            if remaining.hi[axis] > inter.hi[axis]:
                remaining, high = remaining.chop(axis, inter.hi[axis] + 1)
                pieces.append(high)
        assert remaining == inter
        return pieces

    # ------------------------------------------------------------------
    # iteration
    # ------------------------------------------------------------------
    def cells(self) -> Iterator[Tuple[int, int]]:
        """Iterate all cell indices (row-major: j fastest)."""
        for i in range(self.lo[0], self.hi[0] + 1):
            for j in range(self.lo[1], self.hi[1] + 1):
                yield (i, j)

    def slices(self, origin: Tuple[int, int] = (0, 0)) -> Tuple[slice, slice]:
        """Numpy slices into an array whose [0,0] element is cell ``origin``."""
        return (
            slice(self.lo[0] - origin[0], self.hi[0] - origin[0] + 1),
            slice(self.lo[1] - origin[1], self.hi[1] - origin[1] + 1),
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Box({self.lo}, {self.hi})"


def bounding_box(boxes: Iterable[Box]) -> Box:
    """Smallest box containing every box in ``boxes`` (non-empty input)."""
    boxes = list(boxes)
    if not boxes:
        raise ValueError("bounding_box of empty sequence")
    lo0 = min(b.lo[0] for b in boxes)
    lo1 = min(b.lo[1] for b in boxes)
    hi0 = max(b.hi[0] for b in boxes)
    hi1 = max(b.hi[1] for b in boxes)
    return Box((lo0, lo1), (hi0, hi1))


__all__.append("bounding_box")
