"""The AMR level hierarchy (AMReX ``Amr``/``AmrCore`` analogue).

Holds per-level geometry, box arrays, distribution mappings, and data,
plus the regrid driver that re-clusters tagged cells every
``regrid_int`` steps — the machinery whose *output* (the evolving box
layout) drives all the I/O sizes the paper measures.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from .box import Box
from .boxarray import BoxArray
from .cluster import ClusterParams, berger_rigoutsos
from .distribution import DistributionMapping, make_distribution
from .geometry import Geometry
from .grid import GridParams, make_level_grids
from .tagging import buffer_tags

__all__ = ["AmrParams", "AmrHierarchy", "LevelState"]


@dataclass(frozen=True)
class AmrParams:
    """The ``amr.*`` input-file knobs used in the paper (Table I + Listing 2)."""

    n_cell: Tuple[int, int] = (32, 32)
    max_level: int = 3
    ref_ratio: int = 2
    regrid_int: int = 2
    blocking_factor: int = 8
    max_grid_size: int = 256
    n_error_buf: int = 2
    grid_eff: float = 0.7

    def __post_init__(self) -> None:
        if self.max_level < 0:
            raise ValueError("max_level must be >= 0")
        if self.ref_ratio < 2:
            raise ValueError("ref_ratio must be >= 2")
        if self.n_cell[0] % self.blocking_factor or self.n_cell[1] % self.blocking_factor:
            raise ValueError(
                f"n_cell {self.n_cell} must be divisible by "
                f"blocking_factor {self.blocking_factor}"
            )

    @property
    def nlevels(self) -> int:
        """Number of levels including the base (max_level + 1)."""
        return self.max_level + 1

    def grid_params(self) -> GridParams:
        return GridParams(self.blocking_factor, self.max_grid_size)


@dataclass
class LevelState:
    """One level of the hierarchy: geometry + box layout + ownership."""

    level: int
    geom: Geometry
    boxarray: BoxArray
    distribution: DistributionMapping

    @property
    def ncells(self) -> int:
        return self.boxarray.numpts

    def cells_per_rank(self) -> np.ndarray:
        out = np.zeros(self.distribution.nprocs, dtype=np.int64)
        sizes = self.boxarray.box_sizes()
        for k, r in enumerate(self.distribution.ranks):
            out[r] += sizes[k]
        return out


class AmrHierarchy:
    """Mesh hierarchy with regridding.

    Parameters
    ----------
    params:
        ``amr.*`` configuration.
    nprocs:
        Number of (simulated) MPI ranks.
    prob_lo / prob_hi:
        Physical domain bounds.
    distribution_strategy:
        Box-to-rank strategy; see :mod:`repro.amr.distribution`.
    """

    def __init__(
        self,
        params: AmrParams,
        nprocs: int = 1,
        prob_lo: Tuple[float, float] = (0.0, 0.0),
        prob_hi: Tuple[float, float] = (1.0, 1.0),
        distribution_strategy: str = "sfc",
    ) -> None:
        self.params = params
        self.nprocs = int(nprocs)
        self.distribution_strategy = distribution_strategy
        base_domain = Box.cell_centered(*params.n_cell)
        base_geom = Geometry(base_domain, prob_lo, prob_hi)
        self.levels: List[LevelState] = []
        # Amortization counters: how often regrid could keep a level's
        # existing LevelState (box layout unchanged) vs. rebuild it.
        self.regrid_stats: Dict[str, int] = {
            "regrids": 0,
            "levels_reused": 0,
            "levels_rebuilt": 0,
        }
        self._init_base_level(base_geom)

    # ------------------------------------------------------------------
    def _init_base_level(self, geom: Geometry) -> None:
        gp = self.params.grid_params()
        ba = make_level_grids([geom.domain], geom.domain, gp, min_grids=self.nprocs)
        dm = make_distribution(ba, self.nprocs, self.distribution_strategy)
        self.levels = [LevelState(0, geom, ba, dm)]

    # ------------------------------------------------------------------
    @property
    def finest_level(self) -> int:
        return len(self.levels) - 1

    def geom(self, level: int) -> Geometry:
        return self.levels[level].geom

    def domain(self, level: int) -> Box:
        return self.levels[level].geom.domain

    def total_cells(self) -> int:
        return sum(lev.ncells for lev in self.levels)

    # ------------------------------------------------------------------
    def regrid(self, tag_fn: Callable[[int, Geometry], np.ndarray]) -> None:
        """Rebuild levels 1..max_level from tags.

        ``tag_fn(level, geom)`` must return a boolean array over the
        *entire index domain* of ``level`` (whose geometry is passed in)
        marking cells that need refinement.  Levels are rebuilt from the
        base upward, with proper nesting enforced by construction (fine
        tags are clipped into the coarser level's own covered region).

        Rebuilds are *amortized*: when the clustered fine BoxArray is
        unchanged from the current layout of that level, the existing
        :class:`LevelState` (including its distribution mapping) is kept
        instead of being re-chopped and re-distributed — between nearby
        regrids of a slowly moving shock most levels are identical.
        ``regrid_stats`` counts reuse vs. rebuild.
        """
        p = self.params
        new_levels: List[LevelState] = [self.levels[0]]
        self.regrid_stats["regrids"] += 1
        for lev in range(p.max_level):
            coarse = new_levels[lev]
            tags = np.asarray(tag_fn(lev, coarse.geom), dtype=bool)
            expect = coarse.geom.domain.shape
            if tags.shape != expect:
                raise ValueError(
                    f"tag array for level {lev} has shape {tags.shape}, "
                    f"expected domain shape {expect}"
                )
            tags = buffer_tags(tags, p.n_error_buf)
            # Proper nesting: tags must lie inside the current level's
            # own box array (levels > 0 only cover part of the domain).
            if lev > 0:
                mask = np.zeros(expect, dtype=bool)
                for b in coarse.boxarray:
                    mask[b.slices()] = True
                tags &= mask
            if not tags.any():
                break
            clustered = berger_rigoutsos(
                tags, origin=(0, 0), params=ClusterParams(grid_eff=p.grid_eff)
            )
            fine_boxes = [b.refine(p.ref_ratio) for b in clustered]
            fine_domain = coarse.geom.domain.refine(p.ref_ratio)
            fine_geom = coarse.geom.refine(p.ref_ratio)
            ba = make_level_grids(
                fine_boxes, fine_domain, p.grid_params(), min_grids=self.nprocs
            )
            if lev > 0:
                # Proper nesting: clip into the parent's refined image
                # (blocking-factor alignment may have grown past it).
                from .grid import clip_boxarray

                ba = clip_boxarray(
                    ba, coarse.boxarray.refine(p.ref_ratio), p.max_grid_size
                )
            if len(ba) == 0:
                break
            old = self.levels[lev + 1] if lev + 1 < len(self.levels) else None
            if old is not None and old.boxarray.same_boxes(ba):
                # Layout unchanged: keep the level (and its distribution)
                # — any MultiFab built on its BoxArray keeps a valid
                # exchange plan, since the BoxArray token is unchanged.
                new_levels.append(old)
                self.regrid_stats["levels_reused"] += 1
                continue
            dm = make_distribution(ba, self.nprocs, self.distribution_strategy)
            new_levels.append(LevelState(lev + 1, fine_geom, ba, dm))
            self.regrid_stats["levels_rebuilt"] += 1
        self.levels = new_levels

    # ------------------------------------------------------------------
    def summary(self) -> str:
        """Human-readable layout summary (one line per level)."""
        lines = []
        for lev in self.levels:
            lines.append(
                f"Level {lev.level}: {len(lev.boxarray)} grids, "
                f"{lev.ncells} cells, dx={lev.geom.dx:.6g}"
            )
        return "\n".join(lines)
