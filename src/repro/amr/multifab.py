"""Level data container (AMReX ``MultiFab`` analogue).

A :class:`MultiFab` stores one numpy array ("FAB") per box of a
:class:`~repro.amr.boxarray.BoxArray`, each with a fixed number of
components and ghost cells.  Ownership follows a
:class:`~repro.amr.distribution.DistributionMapping`, so per-rank byte
accounting (the quantity the paper measures) falls out of the container.

Ghost exchange is *plan-cached*: the first :meth:`MultiFab.fill_boundary`
builds an exchange plan — the list of ``(src_fab, dst_fab, overlap)``
slice tuples — keyed by the BoxArray's identity token, and every later
call replays it as one all-component fancy-slice assignment per pair.
The O(N²) pairwise box intersection scan is paid once per layout, not
once per step per component (the seed behaviour).  The plan invalidates
automatically when ``boxarray`` is swapped (regrid) and can be dropped
explicitly with :meth:`MultiFab.invalidate_exchange_plan`.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterator, List, Optional, Tuple

import numpy as np

from .. import sanitize
from .box import Box
from .boxarray import BoxArray
from .distribution import DistributionMapping

__all__ = ["Fab", "MultiFab", "regrid_multifab"]


class Fab:
    """A single box's data: array of shape ``(ncomp, nx+2g, ny+2g)``."""

    def __init__(self, box: Box, ncomp: int, nghost: int = 0, dtype=np.float64) -> None:
        self.box = box
        self.ncomp = int(ncomp)
        self.nghost = int(nghost)
        nx, ny = box.shape
        self.data = np.zeros((self.ncomp, nx + 2 * self.nghost, ny + 2 * self.nghost), dtype=dtype)

    @property
    def grown_box(self) -> Box:
        """The box including ghost cells."""
        return self.box.grow(self.nghost)

    def interior(self, comp: Optional[int] = None) -> np.ndarray:
        """View of valid (non-ghost) cells; one comp or all."""
        g = self.nghost
        nx, ny = self.box.shape
        sl = (slice(g, g + nx), slice(g, g + ny))
        if comp is None:
            return self.data[(slice(None),) + sl]
        return self.data[(comp,) + sl]

    def view(self, region: Box, comp: int) -> np.ndarray:
        """View of ``region`` (index space, may touch ghosts) for ``comp``."""
        gb = self.grown_box
        if not gb.contains(region):
            raise ValueError(f"region {region} not inside grown box {gb}")
        sl = region.slices(gb.lo)
        return self.data[comp][sl]

    def nbytes_valid(self) -> int:
        """Bytes of valid-region data (what gets written to plotfiles)."""
        return self.box.numpts * self.ncomp * self.data.dtype.itemsize


class MultiFab:
    """Distributed collection of Fabs over a BoxArray.

    In this single-process simulation every rank's data lives in one
    address space; the distribution mapping still records logical
    ownership so that I/O accounting is per-rank faithful.
    """

    def __init__(
        self,
        ba: BoxArray,
        dm: DistributionMapping,
        ncomp: int,
        nghost: int = 0,
        dtype=np.float64,
    ) -> None:
        if len(ba) != len(dm):
            raise ValueError(
                f"BoxArray has {len(ba)} boxes but mapping has {len(dm)} entries"
            )
        self.boxarray = ba
        self.distribution = dm
        self.ncomp = int(ncomp)
        self.nghost = int(nghost)
        self.fabs: List[Fab] = [Fab(b, ncomp, nghost, dtype) for b in ba]
        self._exchange_plan: Optional[List[Tuple[int, int, tuple, tuple]]] = None
        self._exchange_key: Optional[Tuple[int, int]] = None
        self._exchange_bounds: Optional[np.ndarray] = None
        self._exchange_crc: Optional[int] = None

    def __len__(self) -> int:
        return len(self.fabs)

    def __iter__(self) -> Iterator[Fab]:
        return iter(self.fabs)

    def __getitem__(self, k: int) -> Fab:
        return self.fabs[k]

    # ------------------------------------------------------------------
    # setters / math
    # ------------------------------------------------------------------
    def set_val(self, value: float, comp: Optional[int] = None) -> None:
        # lint: allow-loop(init-path setter, not per-step; fabs are ragged)
        for fab in self.fabs:
            if comp is None:
                fab.data[...] = value
            else:
                fab.data[comp, ...] = value

    def fill_from_function(
        self, fn: Callable[[np.ndarray, np.ndarray], np.ndarray], comp: int, geom
    ) -> None:
        """Set component ``comp`` from ``fn(X, Y)`` at valid cell centers."""
        # lint: allow-loop(initial-condition fill, once per run; ragged shapes)
        for fab in self.fabs:
            X, Y = geom.cell_centers(fab.box)
            fab.interior(comp)[...] = fn(X, Y)

    def min(self, comp: int) -> float:
        if not self.fabs:
            raise ValueError("empty MultiFab")
        return min(float(fab.interior(comp).min()) for fab in self.fabs)

    def max(self, comp: int) -> float:
        if not self.fabs:
            raise ValueError("empty MultiFab")
        return max(float(fab.interior(comp).max()) for fab in self.fabs)

    def sum(self, comp: int) -> float:
        return sum(float(fab.interior(comp).sum()) for fab in self.fabs)

    # ------------------------------------------------------------------
    # layout queries
    # ------------------------------------------------------------------
    def shape_groups(self) -> Tuple[np.ndarray, ...]:
        """Fab indices grouped by identical valid ``(nx, ny)`` shape.

        The substrate of the fused hydro kernels
        (:class:`repro.hydro.fused.FusedLevelPlan`): after ``chop`` most
        fabs of a level share one shape, so grouped fabs can be stacked
        into a single ``(ncomp, nfabs, ...)`` array and run through one
        kernel chain.  Groups are ordered by shape (``np.unique`` row
        order) with indices ascending inside each group — a pure
        function of the layout, so results for one ``boxarray`` never
        change.  The returned int64 index arrays are frozen.
        """
        los, his = self.boxarray.corners()
        shapes = his - los + 1
        if len(shapes) == 0:
            return ()
        uniq, inverse = np.unique(shapes, axis=0, return_inverse=True)
        return tuple(
            sanitize.frozen(np.nonzero(inverse == g)[0].astype(np.int64))
            for g in range(len(uniq))
        )

    # ------------------------------------------------------------------
    # ghost exchange
    # ------------------------------------------------------------------
    def _build_exchange_plan(self) -> List[Tuple[int, int, tuple, tuple]]:
        """One pairwise scan over the layout; the replayable result.

        Each entry ``(src, dst, src_index, dst_index)`` copies every
        component of the overlap in a single slice assignment:
        ``fabs[dst].data[dst_index] = fabs[src].data[src_index]``.
        Overlaps only ever cover *ghost* cells of ``dst`` (member boxes
        are disjoint), so replay order cannot matter.
        """
        plan: List[Tuple[int, int, tuple, tuple]] = []
        if len(self.fabs) < 2:
            return plan
        g = self.nghost
        lo, hi = _corner_arrays(self.boxarray)
        glo = lo - g  # grown-box corners (also each fab's data origin)
        ghi = hi + g
        all_comps = (slice(None),)
        for di, si, o_lo, o_hi in _pairwise_overlaps(
            glo, ghi, lo, hi, skip_diagonal=True
        ):
            dst_sl = all_comps + _overlap_slices(o_lo, o_hi, glo[di])
            src_sl = all_comps + _overlap_slices(o_lo, o_hi, glo[si])
            plan.append((si, di, src_sl, dst_sl))
        return plan

    def exchange_plan(self) -> List[Tuple[int, int, tuple, tuple]]:
        """The cached ghost-exchange plan, (re)built if stale.

        The cache key is ``(boxarray.token, nghost)`` — swapping in a
        new BoxArray (what a regrid does) invalidates the plan without
        any explicit bookkeeping by the caller.
        """
        key = (self.boxarray.token, self.nghost)
        if self._exchange_plan is None or self._exchange_key != key:
            self._exchange_plan = self._build_exchange_plan()
            self._exchange_key = key
            self._exchange_bounds = _plan_bounds(self._exchange_plan)
            self._exchange_crc = (
                sanitize.checksum(self._exchange_plan)
                if sanitize.enabled() else None
            )
        return self._exchange_plan

    def exchange_bounds(self) -> np.ndarray:
        """Read-only ``(npairs, 10)`` int64 columnar view of the plan.

        Columns: ``src, dst, src x0, x1, y0, y1, dst x0, x1, y0, y1``
        (stop-exclusive, grown-box local).  Frozen at build so analysis
        consumers cannot corrupt the cached plan through it.
        """
        self.exchange_plan()
        assert self._exchange_bounds is not None
        return self._exchange_bounds

    def invalidate_exchange_plan(self) -> None:
        """Drop the cached plan (next ``fill_boundary`` rebuilds it)."""
        self._exchange_plan = None
        self._exchange_key = None
        self._exchange_bounds = None
        self._exchange_crc = None

    def fill_boundary(self) -> None:
        """Copy valid data into overlapping ghost regions of sibling fabs.

        Replays the cached exchange plan: one fancy-slice assignment
        per overlapping fab pair, all components at once.  Bit-identical
        to the seed's per-destination, per-component intersection loop.
        Under ``REPRO_SANITIZE=1`` the plan is checksummed before replay
        and any drift since the build raises
        :class:`~repro.sanitize.SanitizeError`.
        """
        if self.nghost == 0:
            return
        plan = self.exchange_plan()
        if sanitize.enabled():
            crc = sanitize.checksum(plan)
            if self._exchange_crc is None:
                self._exchange_crc = crc
            else:
                sanitize.check(
                    crc == self._exchange_crc,
                    "ghost-exchange plan drifted since it was built "
                    f"(key={self._exchange_key}); a consumer mutated the "
                    "cached plan list",
                )
        fabs = self.fabs
        for si, di, src_sl, dst_sl in plan:
            fabs[di].data[dst_sl] = fabs[si].data[src_sl]

    # ------------------------------------------------------------------
    # accounting
    # ------------------------------------------------------------------
    def bytes_per_rank(self) -> np.ndarray:
        """Valid-region bytes owned by each rank (one vectorized pass)."""
        out = np.zeros(self.distribution.nprocs, dtype=np.int64)
        if not self.fabs:
            return out
        itemsize = self.fabs[0].data.dtype.itemsize
        nbytes = self.boxarray.box_sizes() * (self.ncomp * itemsize)
        np.add.at(out, np.asarray(self.distribution.ranks, dtype=np.intp), nbytes)
        return out

    def total_bytes(self) -> int:
        return int(sum(fab.nbytes_valid() for fab in self.fabs))


def regrid_multifab(
    old: MultiFab, ba: BoxArray, dm: DistributionMapping
) -> MultiFab:
    """Rebuild level data onto a new layout, moving instead of remaking.

    * Unchanged layout (same boxes and ownership): the *old* MultiFab is
      returned as-is — fab arrays and the cached exchange plan survive.
    * Changed layout: a fresh MultiFab is allocated and every valid-region
      overlap with the old layout (found with the same vectorized
      pairwise scan the exchange-plan build uses) is copied across in
      one all-component slice assignment per pair.  Cells with no
      old-data coverage stay zero for the caller to fill (prolongation
      from the coarse level), so a regrid only re-interpolates the
      genuinely new cells.
    """
    if (
        old.boxarray.same_boxes(ba)
        and old.distribution.nprocs == dm.nprocs
        and tuple(old.distribution.ranks) == tuple(dm.ranks)
    ):
        return old
    dtype = old.fabs[0].data.dtype if old.fabs else np.float64
    new = MultiFab(ba, dm, old.ncomp, old.nghost, dtype)
    if not new.fabs or not old.fabs:
        return new
    g = old.nghost
    new_lo, new_hi = _corner_arrays(ba)
    old_lo, old_hi = _corner_arrays(old.boxarray)
    all_comps = (slice(None),)
    for di, si, o_lo, o_hi in _pairwise_overlaps(
        new_lo, new_hi, old_lo, old_hi, skip_diagonal=False
    ):
        dst_sl = all_comps + _overlap_slices(o_lo, o_hi, new_lo[di] - g)
        src_sl = all_comps + _overlap_slices(o_lo, o_hi, old_lo[si] - g)
        new.fabs[di].data[dst_sl] = old.fabs[si].data[src_sl]
    return new


def _plan_bounds(plan: List[Tuple[int, int, tuple, tuple]]) -> np.ndarray:
    """Frozen columnar form of an exchange plan (see ``exchange_bounds``)."""
    rows = np.empty((len(plan), 10), dtype=np.int64)
    for k, (si, di, src_sl, dst_sl) in enumerate(plan):
        rows[k, 0] = si
        rows[k, 1] = di
        rows[k, 2:6] = (src_sl[1].start, src_sl[1].stop,
                        src_sl[2].start, src_sl[2].stop)
        rows[k, 6:10] = (dst_sl[1].start, dst_sl[1].stop,
                         dst_sl[2].start, dst_sl[2].stop)
    return sanitize.frozen(rows)


def _corner_arrays(ba: BoxArray) -> Tuple[np.ndarray, np.ndarray]:
    """(n, 2) int64 arrays of the member boxes' lo and hi corners."""
    lo = np.array([b.lo for b in ba], dtype=np.int64).reshape(len(ba), 2)
    hi = np.array([b.hi for b in ba], dtype=np.int64).reshape(len(ba), 2)
    return lo, hi


def _pairwise_overlaps(dlo, dhi, slo, shi, skip_diagonal):
    """All ``(dst, src, overlap_lo, overlap_hi)`` between two box lists.

    One vectorized max/min pass over stacked corners per dst block —
    the O(N²) scan costs NumPy array ops, not Python ``Box`` calls.
    Blocks bound the ``(block, n_src, 2)`` temporaries.
    """
    out = []
    n_dst, n_src = len(dlo), len(slo)
    block = max(1, (1 << 21) // max(n_src, 1))
    for d0 in range(0, n_dst, block):
        d1 = min(d0 + block, n_dst)
        olo = np.maximum(dlo[d0:d1, None, :], slo[None, :, :])
        ohi = np.minimum(dhi[d0:d1, None, :], shi[None, :, :])
        valid = (olo <= ohi).all(axis=2)
        if skip_diagonal:
            idx = np.arange(d0, min(d1, n_src))
            valid[idx - d0, idx] = False
        dsts, srcs = np.nonzero(valid)
        for db, si in zip(dsts.tolist(), srcs.tolist()):
            out.append((d0 + db, si, olo[db, si], ohi[db, si]))
    return out


def _overlap_slices(o_lo, o_hi, origin) -> Tuple[slice, slice]:
    """Slices of overlap ``[o_lo, o_hi]`` into an array starting at ``origin``."""
    return (
        slice(int(o_lo[0] - origin[0]), int(o_hi[0] - origin[0]) + 1),
        slice(int(o_lo[1] - origin[1]), int(o_hi[1] - origin[1]) + 1),
    )
