"""Level data container (AMReX ``MultiFab`` analogue).

A :class:`MultiFab` stores one numpy array ("FAB") per box of a
:class:`~repro.amr.boxarray.BoxArray`, each with a fixed number of
components and ghost cells.  Ownership follows a
:class:`~repro.amr.distribution.DistributionMapping`, so per-rank byte
accounting (the quantity the paper measures) falls out of the container.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterator, List, Optional, Tuple

import numpy as np

from .box import Box
from .boxarray import BoxArray
from .distribution import DistributionMapping

__all__ = ["Fab", "MultiFab"]


class Fab:
    """A single box's data: array of shape ``(ncomp, nx+2g, ny+2g)``."""

    def __init__(self, box: Box, ncomp: int, nghost: int = 0, dtype=np.float64) -> None:
        self.box = box
        self.ncomp = int(ncomp)
        self.nghost = int(nghost)
        nx, ny = box.shape
        self.data = np.zeros((self.ncomp, nx + 2 * self.nghost, ny + 2 * self.nghost), dtype=dtype)

    @property
    def grown_box(self) -> Box:
        """The box including ghost cells."""
        return self.box.grow(self.nghost)

    def interior(self, comp: Optional[int] = None) -> np.ndarray:
        """View of valid (non-ghost) cells; one comp or all."""
        g = self.nghost
        nx, ny = self.box.shape
        sl = (slice(g, g + nx), slice(g, g + ny))
        if comp is None:
            return self.data[(slice(None),) + sl]
        return self.data[(comp,) + sl]

    def view(self, region: Box, comp: int) -> np.ndarray:
        """View of ``region`` (index space, may touch ghosts) for ``comp``."""
        gb = self.grown_box
        if not gb.contains(region):
            raise ValueError(f"region {region} not inside grown box {gb}")
        sl = region.slices(gb.lo)
        return self.data[comp][sl]

    def nbytes_valid(self) -> int:
        """Bytes of valid-region data (what gets written to plotfiles)."""
        return self.box.numpts * self.ncomp * self.data.dtype.itemsize


class MultiFab:
    """Distributed collection of Fabs over a BoxArray.

    In this single-process simulation every rank's data lives in one
    address space; the distribution mapping still records logical
    ownership so that I/O accounting is per-rank faithful.
    """

    def __init__(
        self,
        ba: BoxArray,
        dm: DistributionMapping,
        ncomp: int,
        nghost: int = 0,
        dtype=np.float64,
    ) -> None:
        if len(ba) != len(dm):
            raise ValueError(
                f"BoxArray has {len(ba)} boxes but mapping has {len(dm)} entries"
            )
        self.boxarray = ba
        self.distribution = dm
        self.ncomp = int(ncomp)
        self.nghost = int(nghost)
        self.fabs: List[Fab] = [Fab(b, ncomp, nghost, dtype) for b in ba]

    def __len__(self) -> int:
        return len(self.fabs)

    def __iter__(self) -> Iterator[Fab]:
        return iter(self.fabs)

    def __getitem__(self, k: int) -> Fab:
        return self.fabs[k]

    # ------------------------------------------------------------------
    # setters / math
    # ------------------------------------------------------------------
    def set_val(self, value: float, comp: Optional[int] = None) -> None:
        for fab in self.fabs:
            if comp is None:
                fab.data[...] = value
            else:
                fab.data[comp, ...] = value

    def fill_from_function(
        self, fn: Callable[[np.ndarray, np.ndarray], np.ndarray], comp: int, geom
    ) -> None:
        """Set component ``comp`` from ``fn(X, Y)`` at valid cell centers."""
        for fab in self.fabs:
            X, Y = geom.cell_centers(fab.box)
            fab.interior(comp)[...] = fn(X, Y)

    def min(self, comp: int) -> float:
        return min(float(fab.interior(comp).min()) for fab in self.fabs)

    def max(self, comp: int) -> float:
        return max(float(fab.interior(comp).max()) for fab in self.fabs)

    def sum(self, comp: int) -> float:
        return sum(float(fab.interior(comp).sum()) for fab in self.fabs)

    # ------------------------------------------------------------------
    # ghost exchange
    # ------------------------------------------------------------------
    def fill_boundary(self) -> None:
        """Copy valid data into overlapping ghost regions of sibling fabs."""
        if self.nghost == 0:
            return
        for dst in self.fabs:
            gb = dst.grown_box
            for src in self.fabs:
                if src is dst:
                    continue
                overlap = gb.intersection(src.box)
                if overlap is None:
                    continue
                for c in range(self.ncomp):
                    dst.view(overlap, c)[...] = src.view(overlap, c)

    # ------------------------------------------------------------------
    # accounting
    # ------------------------------------------------------------------
    def bytes_per_rank(self) -> np.ndarray:
        """Valid-region bytes owned by each rank."""
        out = np.zeros(self.distribution.nprocs, dtype=np.int64)
        for k, fab in enumerate(self.fabs):
            out[self.distribution[k]] += fab.nbytes_valid()
        return out

    def total_bytes(self) -> int:
        return int(sum(fab.nbytes_valid() for fab in self.fabs))
