"""Grid generation: blocking-factor alignment and max-grid-size chopping.

AMReX turns clustered boxes into the final ``BoxArray`` of a level by

1. coarsening/refining each box so it aligns to ``amr.blocking_factor``
   (every grid edge is a multiple of the blocking factor), and
2. chopping any box larger than ``amr.max_grid_size`` into pieces.

The Sedov configuration in the paper uses ``blocking_factor = 8`` and
``max_grid_size = 256`` — these two knobs control how many ``Cell_D``
files each level produces, so they matter directly for the I/O model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List

from .box import Box
from .boxarray import BoxArray

__all__ = [
    "GridParams",
    "align_to_blocking_factor",
    "chop_to_max_size",
    "clip_boxarray",
    "make_level_grids",
]


@dataclass(frozen=True)
class GridParams:
    """Grid-generation knobs (AMReX ``amr.*`` parameters)."""

    blocking_factor: int = 8
    max_grid_size: int = 256

    def __post_init__(self) -> None:
        if self.blocking_factor < 1:
            raise ValueError("blocking_factor must be >= 1")
        if self.max_grid_size < self.blocking_factor:
            raise ValueError(
                f"max_grid_size ({self.max_grid_size}) must be >= "
                f"blocking_factor ({self.blocking_factor})"
            )
        if self.max_grid_size % self.blocking_factor != 0:
            raise ValueError("max_grid_size must be a multiple of blocking_factor")


def align_to_blocking_factor(box: Box, blocking_factor: int, domain: Box) -> Box:
    """Grow ``box`` outward to blocking-factor boundaries, clipped to domain.

    The domain itself must be blocking-factor aligned (AMReX enforces
    this on ``amr.n_cell``); the clipped result then stays aligned.
    """
    bf = blocking_factor
    lo = (box.lo[0] // bf * bf, box.lo[1] // bf * bf)
    hi = (
        (box.hi[0] // bf + 1) * bf - 1,
        (box.hi[1] // bf + 1) * bf - 1,
    )
    grown = Box(lo, hi)
    clipped = grown.intersection(domain)
    if clipped is None:
        raise ValueError(f"box {box} aligned to {bf} falls outside domain {domain}")
    return clipped


def chop_to_max_size(box: Box, max_grid_size: int) -> List[Box]:
    """Recursively split ``box`` so no side exceeds ``max_grid_size``.

    Splits are placed at multiples of ``max_grid_size`` relative to the
    box's lower corner, matching AMReX ``BoxArray::maxSize`` behaviour of
    producing near-equal chunks.
    """
    out: List[Box] = []
    stack = [box]
    while stack:
        b = stack.pop()
        nx, ny = b.shape
        if nx <= max_grid_size and ny <= max_grid_size:
            out.append(b)
            continue
        axis = 0 if nx >= ny else 1
        n = b.shape[axis]
        nchunks = -(-n // max_grid_size)  # ceil division
        # Split near the middle at a chunk boundary for balance.
        chunk = -(-n // nchunks)
        at = b.lo[axis] + chunk * (nchunks // 2)
        if at <= b.lo[axis] or at > b.hi[axis]:
            at = b.lo[axis] + n // 2
        left, right = b.chop(axis, at)
        stack.append(left)
        stack.append(right)
    out.sort()
    return out


def _dedupe_overlaps(boxes: List[Box]) -> List[Box]:
    """Make a list of possibly-overlapping boxes disjoint.

    Later boxes are clipped against earlier ones.  Blocking-factor
    alignment can create overlaps between neighbouring clustered boxes;
    AMReX resolves these the same way (``removeOverlap``).
    """
    result: List[Box] = []
    for b in boxes:
        pieces = [b]
        for existing in result:
            nxt: List[Box] = []
            for piece in pieces:
                nxt.extend(piece.difference(existing))
            pieces = nxt
            if not pieces:
                break
        result.extend(pieces)
    return result


def clip_boxarray(ba: BoxArray, allowed: BoxArray, max_grid_size: int) -> BoxArray:
    """Intersect every box of ``ba`` with the union of ``allowed``.

    Used to enforce proper nesting: a fine level's grids may not extend
    past the refined image of its parent's coverage.  ``allowed`` must be
    disjoint; results are re-chopped to ``max_grid_size``.
    """
    out: List[Box] = []
    for b in ba:
        for _, inter in allowed.intersections(b):
            out.extend(chop_to_max_size(inter, max_grid_size))
    out.sort()
    return BoxArray(out)


def refine_grid_layout(boxes: List[Box], min_grids: int, blocking_factor: int) -> List[Box]:
    """Chop grids until there are at least ``min_grids`` of them.

    Mirrors AMReX's ``refine_grid_layout`` (on by default): when a level
    has fewer grids than MPI ranks, the largest grids are split in half
    (respecting the blocking factor) so every rank gets work — this is
    why real Castro runs show all tasks producing L0 data in Fig. 8.
    """
    out = list(boxes)
    while len(out) < min_grids:
        # Split the largest splittable box in half along its long axis.
        order = sorted(range(len(out)), key=lambda k: out[k].numpts, reverse=True)
        for k in order:
            b = out[k]
            axis = 0 if b.shape[0] >= b.shape[1] else 1
            n = b.shape[axis]
            half = (n // 2 // blocking_factor) * blocking_factor
            if half < blocking_factor or n - half < blocking_factor:
                continue
            left, right = b.chop(axis, b.lo[axis] + half)
            out[k] = left
            out.append(right)
            break
        else:
            break  # nothing splittable remains
    out.sort()
    return out


def make_level_grids(
    clustered: Iterable[Box],
    domain: Box,
    params: GridParams = GridParams(),
    min_grids: int = 0,
) -> BoxArray:
    """Produce the final level ``BoxArray`` from clustered boxes.

    Applies blocking-factor alignment, de-overlapping, max-grid-size
    chopping, and (when ``min_grids`` > 0) AMReX's refine-grid-layout
    splitting, in AMReX order.
    """
    aligned = [
        align_to_blocking_factor(b, params.blocking_factor, domain) for b in clustered
    ]
    disjoint = _dedupe_overlaps(aligned)
    final: List[Box] = []
    for b in disjoint:
        final.extend(chop_to_max_size(b, params.max_grid_size))
    if min_grids > 0:
        final = refine_grid_layout(final, min_grids, params.blocking_factor)
    final.sort()
    ba = BoxArray(final)
    return ba
