"""Distribution mappings: assigning boxes to MPI ranks.

AMReX's ``DistributionMapping`` supports several strategies; the ones that
matter for the paper's I/O accounting are implemented here:

- ``round_robin``: box ``k`` goes to rank ``k % nprocs``.
- ``knapsack``: greedy longest-processing-time bin packing on box cell
  counts (AMReX's default heuristic for balancing compute).
- ``sfc``: Morton space-filling-curve ordering with contiguous chunking,
  AMReX's default for large box counts (preserves locality).

The mapping determines which rank writes which ``Cell_D`` file content,
hence the per-task output sizes and the load imbalance seen in Fig. 8.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from .box import Box
from .boxarray import BoxArray

__all__ = [
    "DistributionMapping",
    "round_robin_map",
    "knapsack_map",
    "sfc_map",
    "make_distribution",
    "morton_key",
    "rank_loads",
]


@dataclass(frozen=True)
class DistributionMapping:
    """Box-to-rank assignment for one level.

    ``ranks[k]`` is the owner rank of box ``k`` of the associated
    :class:`~repro.amr.boxarray.BoxArray`.
    """

    ranks: Tuple[int, ...]
    nprocs: int

    def __post_init__(self) -> None:
        if self.nprocs < 1:
            raise ValueError("nprocs must be >= 1")
        for r in self.ranks:
            if not (0 <= r < self.nprocs):
                raise ValueError(f"rank {r} out of range [0, {self.nprocs})")

    def __len__(self) -> int:
        return len(self.ranks)

    def __getitem__(self, k: int) -> int:
        return self.ranks[k]

    def boxes_of_rank(self, rank: int) -> List[int]:
        """Indices of boxes owned by ``rank``."""
        return [k for k, r in enumerate(self.ranks) if r == rank]


def round_robin_map(ba: BoxArray, nprocs: int) -> DistributionMapping:
    """Cyclic assignment box k -> rank k % nprocs."""
    return DistributionMapping(tuple(k % nprocs for k in range(len(ba))), nprocs)


def knapsack_map(ba: BoxArray, nprocs: int) -> DistributionMapping:
    """Greedy LPT knapsack on cell counts (heaviest box to lightest rank)."""
    weights = ba.box_sizes()
    order = np.argsort(weights)[::-1]  # heaviest first
    loads = np.zeros(nprocs, dtype=np.int64)
    ranks = [0] * len(ba)
    for k in order:
        r = int(np.argmin(loads))
        ranks[int(k)] = r
        loads[r] += weights[k]
    return DistributionMapping(tuple(ranks), nprocs)


def morton_key(i: int, j: int, bits: int = 21) -> int:
    """Interleave the low ``bits`` bits of (i, j) into a Morton code."""
    if i < 0 or j < 0:
        raise ValueError("morton_key requires non-negative indices")
    key = 0
    for b in range(bits):
        key |= ((i >> b) & 1) << (2 * b)
        key |= ((j >> b) & 1) << (2 * b + 1)
    return key


def sfc_map(ba: BoxArray, nprocs: int) -> DistributionMapping:
    """Morton-curve ordering with weight-balanced contiguous chunks.

    Boxes are sorted by the Morton key of their lower corner, then the
    sorted sequence is cut into ``nprocs`` contiguous chunks of roughly
    equal total weight (AMReX ``SFCProcessorMap`` behaviour).
    """
    n = len(ba)
    if n == 0:
        return DistributionMapping((), nprocs)
    keys = [morton_key(max(b.lo[0], 0), max(b.lo[1], 0)) for b in ba]
    order = sorted(range(n), key=lambda k: keys[k])
    weights = ba.box_sizes()
    total = int(weights.sum())
    # Balanced contiguous chunking: a box whose weight-midpoint falls in
    # the r-th of nprocs equal weight intervals goes to rank r.  This is
    # monotone along the curve and spreads equal-weight boxes evenly.
    ranks = [0] * n
    acc = 0
    for k in order:
        w = int(weights[k])
        mid = acc + 0.5 * w
        ranks[k] = min(nprocs - 1, int(mid * nprocs / total)) if total > 0 else 0
        acc += w
    return DistributionMapping(tuple(ranks), nprocs)


_STRATEGIES = {
    "round_robin": round_robin_map,
    "knapsack": knapsack_map,
    "sfc": sfc_map,
}


def make_distribution(ba: BoxArray, nprocs: int, strategy: str = "sfc") -> DistributionMapping:
    """Dispatch on strategy name; AMReX's default for big arrays is SFC.

    ``"hilbert"`` (the locality-optimal curve) is resolved lazily to
    avoid a circular import with :mod:`repro.amr.hilbert`.
    """
    if strategy == "hilbert":
        from .hilbert import hilbert_map

        return hilbert_map(ba, nprocs)
    try:
        fn = _STRATEGIES[strategy]
    except KeyError:
        raise ValueError(
            f"unknown distribution strategy {strategy!r}; "
            f"choose from {sorted(_STRATEGIES)}"
        ) from None
    return fn(ba, nprocs)


def rank_loads(ba: BoxArray, dm: DistributionMapping) -> np.ndarray:
    """Cells owned by each rank (length ``dm.nprocs``)."""
    loads = np.zeros(dm.nprocs, dtype=np.int64)
    sizes = ba.box_sizes()
    for k, r in enumerate(dm.ranks):
        loads[r] += sizes[k]
    return loads
