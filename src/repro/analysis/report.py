"""Text rendering of the paper's tables and figure data.

Every benchmark prints through these helpers so the regenerated rows
and series have a consistent, diffable format in ``bench_output.txt``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

__all__ = ["format_table", "format_series", "format_comparison", "human_bytes"]


def human_bytes(n: float) -> str:
    """1536 -> '1.50 KiB' etc.; scientific beyond TiB."""
    step = 1024.0
    units = ["B", "KiB", "MiB", "GiB", "TiB"]
    v = float(n)
    for unit in units:
        if abs(v) < step or unit == units[-1]:
            if unit == "B":
                return f"{v:.0f} {unit}"
            return f"{v:.2f} {unit}"
        v /= step
    return f"{n:.3e} B"


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]], title: Optional[str] = None
) -> str:
    """Fixed-width ASCII table."""
    cols = [[str(h)] + [str(r[i]) for r in rows] for i, h in enumerate(headers)]
    widths = [max(len(cell) for cell in col) for col in cols]
    lines: List[str] = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for r in rows:
        lines.append(" | ".join(str(v).ljust(w) for v, w in zip(r, widths)))
    return "\n".join(lines)


def format_series(
    x: Sequence[float],
    ys: Dict[str, Sequence[float]],
    x_label: str = "x",
    title: Optional[str] = None,
    fmt: str = "{:.6g}",
) -> str:
    """Columnar series dump: x then one column per named y."""
    names = list(ys)
    headers = [x_label] + names
    rows: List[List[str]] = []
    n = len(x)
    for name in names:
        if len(ys[name]) != n:
            raise ValueError(f"series {name!r} length mismatch")
    for i in range(n):
        row = [fmt.format(float(x[i]))]
        row += [fmt.format(float(ys[name][i])) for name in names]
        rows.append(row)
    return format_table(headers, rows, title)


def format_comparison(
    name: str,
    sim: Sequence[float],
    proxy: Sequence[float],
    metrics: Dict[str, float],
) -> str:
    """Fig.-10-style pairing of simulated vs proxy series."""
    lines = [f"== {name} =="]
    lines.append(
        format_series(
            list(range(len(sim))),
            {"sim_bytes": sim, "macsio_bytes": proxy},
            x_label="dump",
        )
    )
    lines.append(
        "metrics: " + ", ".join(f"{k}={v:.4g}" for k, v in metrics.items())
    )
    return "\n".join(lines)
