"""Analysis layer: load balance, comparisons, report formatting."""

from .burstiness import BurstinessStats, analyze_schedule, duty_cycle, interarrival_cv
from .compare import (
    ComparisonRow,
    MachineBurstRow,
    classify_linearity,
    compare_machines,
    compare_record_to_macsio,
    format_machine_comparison,
    record_burst_seconds,
)
from .loadbalance import (
    active_fraction,
    gini_coefficient,
    imbalance_factor,
    imbalance_report,
    per_level_loads,
)
from .report import format_comparison, format_series, format_table, human_bytes

__all__ = [
    "BurstinessStats",
    "analyze_schedule",
    "duty_cycle",
    "interarrival_cv",
    "ComparisonRow",
    "MachineBurstRow",
    "classify_linearity",
    "compare_machines",
    "compare_record_to_macsio",
    "format_machine_comparison",
    "record_burst_seconds",
    "active_fraction",
    "gini_coefficient",
    "imbalance_factor",
    "imbalance_report",
    "per_level_loads",
    "format_comparison",
    "format_series",
    "format_table",
    "human_bytes",
]
