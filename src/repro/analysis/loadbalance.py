"""Load-balance metrics for per-task output (the Fig. 8 analysis).

The paper observes that "AMR effects result in unbalanced loads at all 4
levels of the resulting mesh hierarchy" and concludes MACSio can model
per-level but not per-rank loads.  These metrics quantify that
imbalance so benches can assert it.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from ..iosim.darshan import IOTrace

__all__ = [
    "imbalance_factor",
    "gini_coefficient",
    "active_fraction",
    "imbalance_report",
    "per_level_loads",
]


def imbalance_factor(loads: Sequence[float]) -> float:
    """max / mean over ranks with the convention 1.0 = perfectly balanced.

    Computed over all ranks (zeros included) — a rank with no file at a
    level is real imbalance in the N-to-N pattern.
    """
    arr = np.asarray(loads, dtype=np.float64)
    if arr.size == 0:
        raise ValueError("empty load vector")
    mean = arr.mean()
    if mean == 0:
        return 1.0
    return float(arr.max() / mean)


def gini_coefficient(loads: Sequence[float]) -> float:
    """Gini index of the load distribution (0 = equal, ->1 = concentrated)."""
    arr = np.sort(np.asarray(loads, dtype=np.float64))
    n = arr.size
    if n == 0:
        raise ValueError("empty load vector")
    total = arr.sum()
    if total == 0:
        return 0.0
    cum = np.cumsum(arr)
    # Standard formula: G = (n + 1 - 2 * sum(cum) / total) / n
    return float((n + 1 - 2 * (cum.sum() / total)) / n)


def active_fraction(loads: Sequence[float]) -> float:
    """Fraction of ranks that wrote anything (files exist only when a
    task owns data at a level)."""
    arr = np.asarray(loads, dtype=np.float64)
    if arr.size == 0:
        raise ValueError("empty load vector")
    return float(np.count_nonzero(arr) / arr.size)


def per_level_loads(
    trace: IOTrace, nprocs: int, step: Optional[int] = None
) -> Dict[int, np.ndarray]:
    """level -> per-rank data-byte vector, straight off the columnar trace.

    One vectorized pass builds the Fig. 8 input for every level at once
    (optionally restricted to one dump); feed the result to
    :func:`imbalance_report`.
    """
    cols = trace.columns()
    mask = (cols.level >= 0) & cols.kind_is("data")
    if step is not None:
        mask &= cols.step == step
    cols.check_rank_bound(nprocs, mask)
    lev, rank, nb = cols.level[mask], cols.rank[mask], cols.nbytes[mask]
    if len(lev) == 0:
        return {}
    mat = np.zeros((int(lev.max()) + 1, nprocs), dtype=np.int64)
    np.add.at(mat, (lev, rank), nb)
    return {int(l): mat[l] for l in np.unique(lev)}


def imbalance_report(per_level_loads: Dict[int, Sequence[float]]) -> Dict[int, Dict[str, float]]:
    """Per-level {imbalance, gini, active_fraction} table."""
    out: Dict[int, Dict[str, float]] = {}
    for lev, loads in sorted(per_level_loads.items()):
        out[lev] = {
            "imbalance": imbalance_factor(loads),
            "gini": gini_coefficient(loads),
            "active_fraction": active_fraction(loads),
        }
    return out
