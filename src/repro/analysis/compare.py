"""AMReX-vs-MACSio comparison helpers (Figs. 10 & 11 machinery)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..campaign.records import RunRecord
from ..core.calibration import CalibrationReport
from ..core.errors import (
    final_cumulative_error,
    mean_relative_error,
    shape_correlation,
)
from ..macsio.dump import run_macsio
from ..macsio.params import MacsioParams

__all__ = ["ComparisonRow", "compare_record_to_macsio", "classify_linearity"]


@dataclass(frozen=True)
class ComparisonRow:
    """One curve pair: simulation vs proxy, with summary metrics."""

    name: str
    sim_step_bytes: Tuple[float, ...]
    proxy_step_bytes: Tuple[float, ...]
    mean_rel_error: float
    final_cum_error: float
    shape_corr: float


def compare_record_to_macsio(
    record: RunRecord, params: MacsioParams, nprocs: Optional[int] = None
) -> ComparisonRow:
    """Run MACSio with ``params`` and compare against a recorded run."""
    nprocs = nprocs or record.nprocs
    run = run_macsio(params, nprocs)
    proxy = np.asarray(run.bytes_per_dump, dtype=np.float64)
    sim = np.asarray(record.step_bytes, dtype=np.float64)
    n = min(len(proxy), len(sim))
    proxy, sim = proxy[:n], sim[:n]
    return ComparisonRow(
        name=record.name,
        sim_step_bytes=tuple(sim),
        proxy_step_bytes=tuple(proxy),
        mean_rel_error=mean_relative_error(proxy, sim),
        final_cum_error=final_cumulative_error(proxy, sim),
        shape_corr=shape_correlation(proxy, sim),
    )


def classify_linearity(x: Sequence[float], y: Sequence[float], tol: float = 0.02) -> str:
    """Label a cumulative curve "linear" or "non-linear".

    Fits y ~ a*x and examines the relative residual; the Fig. 5
    discussion separates near-linear runs from runs that "deviate from
    this linear behavior".
    """
    xv = np.asarray(x, dtype=np.float64)
    yv = np.asarray(y, dtype=np.float64)
    if xv.shape != yv.shape or xv.size < 3:
        raise ValueError("need >= 3 paired points")
    denom = float(xv @ xv)
    if denom == 0:
        raise ValueError("degenerate x values")
    a = float(xv @ yv) / denom
    resid = yv - a * xv
    rel = float(np.sqrt(np.mean(resid**2))) / float(np.mean(np.abs(yv)))
    return "linear" if rel <= tol else "non-linear"
