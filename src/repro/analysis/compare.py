"""Comparison helpers: AMReX-vs-MACSio (Figs. 10 & 11) and cross-machine.

The second half is the platform side of the predictive-tool story: a
recorded campaign (from any machine) can be replayed through every
registered :class:`~repro.platform.Platform`'s storage model to compare
burst totals across machines without re-running anything.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..campaign.records import RunRecord
from ..core.calibration import CalibrationReport
from ..core.errors import (
    final_cumulative_error,
    mean_relative_error,
    shape_correlation,
)
from ..macsio.dump import run_macsio
from ..macsio.params import MacsioParams
from ..platform import get_platform
from .report import format_table, human_bytes

__all__ = [
    "ComparisonRow",
    "compare_record_to_macsio",
    "classify_linearity",
    "MachineBurstRow",
    "record_burst_seconds",
    "compare_machines",
    "format_machine_comparison",
]


@dataclass(frozen=True)
class ComparisonRow:
    """One curve pair: simulation vs proxy, with summary metrics."""

    name: str
    sim_step_bytes: Tuple[float, ...]
    proxy_step_bytes: Tuple[float, ...]
    mean_rel_error: float
    final_cum_error: float
    shape_corr: float


def compare_record_to_macsio(
    record: RunRecord, params: MacsioParams, nprocs: Optional[int] = None
) -> ComparisonRow:
    """Run MACSio with ``params`` and compare against a recorded run."""
    nprocs = nprocs or record.nprocs
    run = run_macsio(params, nprocs)
    proxy = np.asarray(run.bytes_per_dump, dtype=np.float64)
    sim = np.asarray(record.step_bytes, dtype=np.float64)
    n = min(len(proxy), len(sim))
    proxy, sim = proxy[:n], sim[:n]
    return ComparisonRow(
        name=record.name,
        sim_step_bytes=tuple(sim),
        proxy_step_bytes=tuple(proxy),
        mean_rel_error=mean_relative_error(proxy, sim),
        final_cum_error=final_cumulative_error(proxy, sim),
        shape_corr=shape_correlation(proxy, sim),
    )


@dataclass(frozen=True)
class MachineBurstRow:
    """Per-machine burst totals of a campaign (one comparison row)."""

    machine: str
    n_runs: int
    total_bytes: float
    burst_seconds: float
    slowest_case: str
    slowest_seconds: float


def record_burst_seconds(
    record: RunRecord,
    machine=None,
    variability: float = 0.0,
    seed: int = 12345,
) -> np.ndarray:
    """Modeled per-dump burst times of one recorded run on a platform.

    ``machine`` defaults to the record's own; naming another replays the
    recorded byte series through that machine's storage model (the
    zero-run what-if).  The final dump uses the recorded per-task byte
    vector (real imbalance); earlier dumps split evenly across ranks,
    the same approximation :func:`~repro.core.predictor.predict_sizes`
    makes.  ``variability=0`` keeps machines comparable by default.
    """
    p = get_platform(machine if machine is not None else record.machine)
    topo = p.topology(record.nprocs, min(record.nnodes, p.total_nodes))
    storage = p.storage_model(variability=variability, seed=seed)
    nodes = topo.node_map()
    per_rank = np.empty(record.nprocs, dtype=np.int64)
    last = len(record.step_bytes) - 1
    out = []
    for k, nb in enumerate(record.step_bytes):
        if k == last and len(record.task_bytes_last) == record.nprocs:
            per_rank[:] = np.asarray(record.task_bytes_last, dtype=np.int64)
        else:
            per_rank[:] = int(nb) // record.nprocs
        out.append(storage.burst_time(per_rank, nodes))
    return np.asarray(out, dtype=np.float64)


def compare_machines(
    records: Sequence[RunRecord],
    machines: Optional[Iterable] = None,
    variability: float = 0.0,
    seed: int = 12345,
) -> List[MachineBurstRow]:
    """Per-machine burst totals, sorted by machine name.

    Two modes:

    * ``machines=None`` — group the records by the machine they ran
      against (the shape of a multi-machine campaign's results);
    * ``machines=[...]`` — replay *every* record on each named machine
      (the zero-run cross-machine what-if for a single-machine campaign).
    """
    if machines is None:
        groups: Dict[str, List[RunRecord]] = {}
        for r in records:
            groups.setdefault(r.machine, []).append(r)
        items = list(groups.items())
    else:
        items = [(get_platform(m).name, list(records)) for m in machines]
    rows: List[MachineBurstRow] = []
    for machine, recs in items:
        total_b = 0.0
        total_s = 0.0
        slowest = ("", 0.0)
        for r in recs:
            s = float(
                record_burst_seconds(
                    r, machine=machine, variability=variability, seed=seed
                ).sum()
            )
            total_s += s
            total_b += float(sum(r.step_bytes))
            if s > slowest[1]:
                slowest = (r.name, s)
        rows.append(
            MachineBurstRow(
                machine=machine,
                n_runs=len(recs),
                total_bytes=total_b,
                burst_seconds=total_s,
                slowest_case=slowest[0],
                slowest_seconds=slowest[1],
            )
        )
    rows.sort(key=lambda row: row.machine)
    return rows


def format_machine_comparison(rows: Sequence[MachineBurstRow]) -> str:
    """ASCII table of :func:`compare_machines` rows."""
    return format_table(
        ["machine", "runs", "total output", "burst total", "slowest case"],
        [
            (
                row.machine,
                row.n_runs,
                human_bytes(row.total_bytes),
                f"{row.burst_seconds:.3f}s",
                f"{row.slowest_case} ({row.slowest_seconds:.3f}s)",
            )
            for row in rows
        ],
        title="per-machine burst totals",
    )


def classify_linearity(x: Sequence[float], y: Sequence[float], tol: float = 0.02) -> str:
    """Label a cumulative curve "linear" or "non-linear".

    Fits y ~ a*x and examines the relative residual; the Fig. 5
    discussion separates near-linear runs from runs that "deviate from
    this linear behavior".
    """
    xv = np.asarray(x, dtype=np.float64)
    yv = np.asarray(y, dtype=np.float64)
    if xv.shape != yv.shape or xv.size < 3:
        raise ValueError("x and y must be equal-length with >= 3 paired points")
    denom = float(xv @ xv)
    if denom == 0:
        raise ValueError("degenerate x values")
    a = float(xv @ yv) / denom
    resid = yv - a * xv
    rel = float(np.sqrt(np.mean(resid**2))) / float(np.mean(np.abs(yv)))
    return "linear" if rel <= tol else "non-linear"
