"""Burstiness statistics for I/O timelines.

Miller & Katz (paper refs. [14]-[15]) characterized supercomputer I/O as
"bursty": CPU phases punctuated by intense I/O.  The paper positions
MACSio's ``compute_time`` as the knob for reproducing that temporal
structure.  These metrics quantify a :class:`~repro.iosim.burst.
BurstSchedule` so burstiness itself becomes a comparable quantity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from ..iosim.burst import BurstSchedule

__all__ = ["BurstinessStats", "analyze_schedule", "duty_cycle", "interarrival_cv"]


def duty_cycle(schedule: BurstSchedule) -> float:
    """Fraction of wall time spent writing (I/O duty cycle)."""
    return schedule.io_fraction()


def _interarrival_cv(timeline: np.ndarray) -> float:
    if len(timeline) < 3:
        return 0.0
    gaps = np.diff(timeline[:, 1])  # column 1 is t_io_start
    mean = gaps.mean()
    if mean == 0:
        return 0.0
    return float(gaps.std() / mean)


def interarrival_cv(schedule: BurstSchedule) -> float:
    """Coefficient of variation of the burst inter-arrival times.

    CV ~ 0: metronomic (fixed compute_time + stable storage);
    CV grows with storage variability and load imbalance.
    """
    return _interarrival_cv(schedule.timeline())


@dataclass(frozen=True)
class BurstinessStats:
    """Summary of a burst timeline."""

    n_bursts: int
    wall_seconds: float
    io_seconds: float
    compute_seconds: float
    duty_cycle: float
    mean_burst_seconds: float
    max_burst_seconds: float
    interarrival_cv: float

    def is_io_bound(self, threshold: float = 0.5) -> bool:
        """True when I/O consumes more than ``threshold`` of wall time —
        the condition the paper's co-design studies hunt for."""
        return self.duty_cycle > threshold


def analyze_schedule(schedule: BurstSchedule) -> BurstinessStats:
    """Compute all burstiness metrics for a timeline."""
    if not schedule.events:
        raise ValueError("empty burst schedule")
    tl = schedule.timeline()
    io_times = tl[:, 2] - tl[:, 1]  # t_end - t_io_start per event
    return BurstinessStats(
        n_bursts=len(schedule.events),
        wall_seconds=schedule.total_seconds,
        io_seconds=schedule.io_seconds,
        compute_seconds=schedule.compute_seconds,
        duty_cycle=duty_cycle(schedule),
        mean_burst_seconds=float(io_times.mean()),
        max_burst_seconds=float(io_times.max()),
        interarrival_cv=_interarrival_cv(tl),
    )
