"""CLI driver: ``python -m tools.lint [paths...]``.

Exit status 0 when every finding is suppressed (with a reason) or no
finding exists; 1 otherwise.  ``--show-suppressed`` lists reasoned
suppressions, ``--select`` narrows to a rule subset, ``--list-rules``
prints the catalog.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from .framework import lint_paths
from .rules import ALL_RULES

ROOT = os.path.abspath(os.path.join(os.path.dirname(__file__), os.pardir, os.pardir))
DEFAULT_PATHS = ["src", "tests", "benchmarks", "tools", "examples"]


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m tools.lint",
        description="repro-lint: AST invariant checker for the repro codebase",
    )
    parser.add_argument("paths", nargs="*", default=DEFAULT_PATHS,
                        help=f"files/directories to lint (default: {' '.join(DEFAULT_PATHS)})")
    parser.add_argument("--select", metavar="RULES",
                        help="comma-separated rule ids to run (e.g. RL001,RL005)")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalog and exit")
    parser.add_argument("--show-suppressed", action="store_true",
                        help="also list suppressed findings with their reasons")
    parser.add_argument("-v", "--verbose", action="store_true",
                        help="per-file progress plus unused-suppression warnings")
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in ALL_RULES:
            print(f"{rule.id}  allow-{rule.slug:<18} {rule.title}")
        return 0

    select = None
    if args.select:
        select = {r.strip() for r in args.select.split(",") if r.strip()}
        known = {r.id for r in ALL_RULES}
        unknown = select - known
        if unknown:
            print(f"repro-lint: unknown rule(s): {', '.join(sorted(unknown))}",
                  file=sys.stderr)
            return 2

    report = lint_paths(args.paths, ALL_RULES, root=ROOT, select=select)

    for err in report.parse_errors:
        print(f"repro-lint: parse error: {err}", file=sys.stderr)
    for f in report.active:
        print(f.render(), file=sys.stderr)
    if args.show_suppressed:
        for f in report.suppressed:
            print(f.render())
    if args.verbose:
        for warning in report.unused_suppressions:
            print(f"repro-lint: warning: {warning}", file=sys.stderr)

    n_active = len(report.active)
    n_sup = len(report.suppressed)
    if report.ok:
        print(f"repro-lint OK ({report.n_files} files, 0 findings, "
              f"{n_sup} suppressed)")
        return 0
    print(
        f"repro-lint: {n_active} finding(s), {n_sup} suppressed, "
        f"{len(report.parse_errors)} parse error(s) across {report.n_files} files",
        file=sys.stderr,
    )
    return 1


if __name__ == "__main__":
    raise SystemExit(main())
