"""The repro-lint rule catalog.

Ten project-specific rules guarding the invariants the plan-cache era
rests on (see ``docs/LINT.md`` for the full catalog with examples):

=========  ====================  =============================================
RL001      cache-key             tuple-keyed cache stores must key every input read
RL002      mutable-plan          arrays stored in plans/caches must be frozen
RL003      random                no module-level ``np.random.*`` / bare ``random.*``
RL004      named-valueerror      ``ValueError`` messages must name the parameter
RL005      broad-except          broad ``except`` must re-record, never swallow
RL006      hot-loop              per-fab/per-rank Python loops in hot modules
RL007      worker-capture        pool workers must not capture shared-mutable state
RL008      api-docstring         ``__init__.py`` exports need docstrings
RL009      retryable-outcome     campaign/service excepts must yield an outcome
RL010      bounded-service-wait  service I/O loops must consult deadline/breaker
=========  ====================  =============================================

Every rule is syntactic and intentionally *narrow*: it matches the
idioms this codebase actually uses (``LRUCache.put``, ``_PLAN_CACHE[key]``,
``BoxArray.token`` keys, ``setflags(write=False)`` freezing) rather than
attempting whole-program dataflow.  What the static shapes cannot see —
aliasing through composite plan objects — is the runtime sanitizer's job
(``repro.sanitize``, enabled with ``REPRO_SANITIZE=1``).
"""

from __future__ import annotations

import ast
import builtins
import os
import re
from typing import Dict, Iterator, List, Optional, Set, Tuple

from .framework import (
    Finding,
    ParsedModule,
    Rule,
    dotted_name,
    module_level_names,
    walk_functions,
)

__all__ = ["ALL_RULES"]

# Names that mark a container as a cache in this codebase.
_CACHEY_RE = re.compile(r"cache|plan|memo|lru|key|prediction", re.I)

# numpy constructors / methods that produce a fresh array worth freezing.
_NP_ARRAY_CTORS = {
    "empty", "zeros", "ones", "full", "arange", "array", "asarray",
    "ascontiguousarray", "copy", "concatenate", "stack", "vstack",
    "hstack", "frombuffer", "fromiter", "cumsum", "linspace", "append",
}
_ARRAY_METHODS = {"astype", "copy"}
# Wrappers that freeze their argument (repro.sanitize.frozen and friends).
_FREEZE_WRAPPERS = {"frozen", "freeze", "_frozen", "_readonly", "freeze_array"}

_BUILTIN_NAMES = set(dir(builtins))


def _np_aliases(tree: ast.Module) -> Set[str]:
    """Local names bound to the numpy module (``np``, ``numpy``)."""
    out: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "numpy":
                    out.add(alias.asname or "numpy")
    return out


def _fn_params(fn: ast.AST) -> Set[str]:
    args = fn.args
    names = [a.arg for a in args.posonlyargs + args.args + args.kwonlyargs]
    if args.vararg:
        names.append(args.vararg.arg)
    if args.kwarg:
        names.append(args.kwarg.arg)
    return set(names)


def _cache_stores(fn: ast.AST) -> List[Tuple[ast.AST, ast.AST, ast.AST]]:
    """``(site, key_expr, value_expr)`` of cache insertions in ``fn``:
    ``<cachey>[key] = value`` subscript stores and ``<cachey>.put(key,
    value)`` calls, where the container name matches :data:`_CACHEY_RE`."""
    out: List[Tuple[ast.AST, ast.AST, ast.AST]] = []
    for node in ast.walk(fn):
        if isinstance(node, ast.Assign):
            for tgt in node.targets:
                if isinstance(tgt, ast.Subscript):
                    container = dotted_name(tgt.value)
                    if container and _CACHEY_RE.search(container):
                        out.append((node, tgt.slice, node.value))
        elif (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "put"
            and len(node.args) >= 2
        ):
            container = dotted_name(node.func.value)
            if container and _CACHEY_RE.search(container):
                out.append((node, node.args[0], node.args[1]))
    return out


# ----------------------------------------------------------------------
class CacheKeyCompleteness(Rule):
    """RL001: a function that stores into a tuple-keyed cache must not
    read ``self``/parameter attributes absent from that key tuple.

    This is the invariant behind every plan cache in the tree: the
    exchange plan keyed by ``(boxarray.token, nghost)``, the dump plan
    keyed by ``(ba.token, dm.ranks, nvars)``, the service's
    ``PlatformPlan`` keyed by ``(machine, nprocs)``.  An attribute the
    function reads but does not key means two different inputs can hit
    the same cache slot — silent wrong answers, not a crash.
    """

    id = "RL001"
    slug = "cache-key"
    title = "cache key must cover every input read"

    def applies(self, relpath: str) -> bool:
        return not relpath.startswith("tests/")

    def check(self, module: ParsedModule) -> Iterator[Finding]:
        for fn, _ in walk_functions(module.tree):
            yield from self._check_fn(module, fn)

    def _check_fn(self, module: ParsedModule, fn: ast.AST) -> Iterator[Finding]:
        # Resolve local ``key = (a, b)`` bindings so both literal-tuple
        # and named-tuple-variable keys are understood.
        tuple_locals: Dict[str, ast.Tuple] = {}
        for node in ast.walk(fn):
            if (
                isinstance(node, ast.Assign)
                and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)
                and isinstance(node.value, ast.Tuple)
            ):
                tuple_locals[node.targets[0].id] = node.value

        key_names: Set[str] = set()
        n_tuple_stores = 0
        for _site, key, _value in _cache_stores(fn):
            kt: Optional[ast.Tuple] = None
            if isinstance(key, ast.Tuple):
                kt = key
            elif isinstance(key, ast.Name):
                kt = tuple_locals.get(key.id)
            if kt is None:
                continue
            n_tuple_stores += 1
            for el in kt.elts:
                for sub in ast.walk(el):
                    dn = dotted_name(sub)
                    if dn is not None:
                        key_names.add(dn)
        if not n_tuple_stores:
            return

        params = _fn_params(fn)
        callee_ids = {
            id(node.func)
            for node in ast.walk(fn)
            if isinstance(node, ast.Call)
        }
        seen: Set[str] = set()
        for node in ast.walk(fn):
            if not (isinstance(node, ast.Attribute) and isinstance(node.ctx, ast.Load)):
                continue
            if id(node) in callee_ids:
                continue  # the method *name*; its receiver chain is still checked
            dn = dotted_name(node)
            if dn is None or dn in seen:
                continue
            base, _, rest = dn.partition(".")
            if base not in params:
                continue
            if any(
                dn == k or k.startswith(dn + ".") or dn.startswith(k + ".")
                for k in key_names
            ):
                continue
            if _CACHEY_RE.search(rest):
                continue  # the cache slot / key bookkeeping itself
            seen.add(dn)
            yield self.finding(
                module,
                node,
                f"`{dn}` is read here but absent from the cache key tuple "
                f"({{{', '.join(sorted(key_names))}}}); key it or annotate "
                f"`# lint: allow-cache-key(reason)`",
            )


# ----------------------------------------------------------------------
class CachedBufferImmutability(Rule):
    """RL002: ndarrays stored into a cache, or onto a ``*Plan`` class,
    must be frozen with ``setflags(write=False)`` (or a freeze wrapper).

    Cached plans are replayed many times; a caller that mutates a cached
    buffer through an alias corrupts every later replay.  The
    ``BoxArray.corners()`` / ``IOTrace.columns()`` idiom — freeze at the
    cache boundary — makes that a loud ``ValueError`` instead.
    """

    id = "RL002"
    slug = "mutable-plan"
    title = "cached arrays must be read-only"

    def applies(self, relpath: str) -> bool:
        return not relpath.startswith("tests/")

    def check(self, module: ParsedModule) -> Iterator[Finding]:
        np_names = _np_aliases(module.tree) or {"np", "numpy"}
        for fn, _ in walk_functions(module.tree):
            yield from self._check_fn(module, fn, np_names)
        for node in module.tree.body:
            if isinstance(node, ast.ClassDef) and "Plan" in node.name:
                yield from self._check_plan_class(module, node, np_names)

    # -- helpers -------------------------------------------------------
    def _is_array_expr(self, node: ast.AST, np_names: Set[str]) -> bool:
        if not isinstance(node, ast.Call):
            return False
        dn = dotted_name(node.func)
        if dn is None:
            return False
        parts = dn.split(".")
        if len(parts) >= 2 and parts[0] in np_names and parts[-1] in _NP_ARRAY_CTORS:
            return True
        return parts[-1] in _ARRAY_METHODS

    def _is_frozen_expr(self, node: ast.AST) -> bool:
        if not isinstance(node, ast.Call):
            return False
        dn = dotted_name(node.func)
        return dn is not None and dn.split(".")[-1] in _FREEZE_WRAPPERS

    def _frozen_targets(self, scope: ast.AST) -> Set[str]:
        """Dotted names ``X`` with an ``X.setflags(write=False)`` call."""
        out: Set[str] = set()
        for node in ast.walk(scope):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "setflags"
            ):
                dn = dotted_name(node.func.value)
                if dn is not None:
                    out.add(dn)
        return out

    def _array_locals(self, scope: ast.AST, np_names: Set[str]) -> Set[str]:
        out: Set[str] = set()
        for node in ast.walk(scope):
            if (
                isinstance(node, ast.Assign)
                and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)
                and self._is_array_expr(node.value, np_names)
            ):
                out.add(node.targets[0].id)
        return out

    def _check_fn(self, module: ParsedModule, fn: ast.AST,
                  np_names: Set[str]) -> Iterator[Finding]:
        stores = _cache_stores(fn)
        if not stores:
            return
        frozen = self._frozen_targets(fn)
        array_locals = self._array_locals(fn, np_names)
        for site, _key, value in stores:
            if self._is_frozen_expr(value):
                continue
            bad = self._is_array_expr(value, np_names) or (
                isinstance(value, ast.Name)
                and value.id in array_locals
                and value.id not in frozen
            )
            if bad:
                yield self.finding(
                    module,
                    site,
                    "ndarray stored into a cache without setflags(write=False); "
                    "freeze it or annotate `# lint: allow-mutable-plan(reason)`",
                )

    def _check_plan_class(self, module: ParsedModule, cls: ast.ClassDef,
                          np_names: Set[str]) -> Iterator[Finding]:
        frozen = self._frozen_targets(cls)
        for fn, _ in walk_functions(cls):
            array_locals = self._array_locals(fn, np_names)
            for node in ast.walk(fn):
                if not (
                    isinstance(node, ast.Assign)
                    and len(node.targets) == 1
                    and isinstance(node.targets[0], ast.Attribute)
                ):
                    continue
                target = dotted_name(node.targets[0])
                if target is None or not target.startswith("self."):
                    continue
                if self._is_frozen_expr(node.value):
                    continue
                bad = self._is_array_expr(node.value, np_names) or (
                    isinstance(node.value, ast.Name)
                    and node.value.id in array_locals
                    and node.value.id not in frozen
                )
                if bad and target not in frozen:
                    yield self.finding(
                        module,
                        node,
                        f"plan attribute `{target}` holds a mutable ndarray; "
                        f"cached plans must freeze their arrays "
                        f"(setflags(write=False) or the `_frozen` helper)",
                    )


# ----------------------------------------------------------------------
class NoUnseededRandomness(Rule):
    """RL003: randomness must flow through seeded generators.

    Module-level ``np.random.*`` calls and the stdlib ``random`` module
    share hidden global state — they break the bit-identical equivalence
    suites and the rank-indexed noise protocol
    (``StorageModel._burst_noise``).  Only ``np.random.default_rng`` and
    the explicit generator/seeding classes are allowed.
    """

    id = "RL003"
    slug = "random"
    title = "no unseeded global randomness"

    _ALLOWED = {"default_rng", "Generator", "SeedSequence", "PCG64", "Philox",
                "BitGenerator"}

    def check(self, module: ParsedModule) -> Iterator[Finding]:
        np_names = _np_aliases(module.tree)
        nprand_names: Set[str] = set()
        stdrand_names: Set[str] = set()
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "random":
                        stdrand_names.add(alias.asname or "random")
                    elif alias.name == "numpy.random":
                        nprand_names.add(alias.asname or "numpy")
            elif isinstance(node, ast.ImportFrom):
                if node.module == "numpy" and node.level == 0:
                    for alias in node.names:
                        if alias.name == "random":
                            nprand_names.add(alias.asname or "random")
                elif node.module == "numpy.random" and node.level == 0:
                    for alias in node.names:
                        if alias.name not in self._ALLOWED:
                            yield self.finding(
                                module, node,
                                f"import of numpy.random.{alias.name}: use "
                                f"np.random.default_rng(seed) generators",
                            )
                elif node.module == "random" and node.level == 0:
                    yield self.finding(
                        module, node,
                        "import from stdlib `random`: use "
                        "np.random.default_rng(seed) generators",
                    )
        seen: Set[Tuple[int, int]] = set()
        for node in ast.walk(module.tree):
            dn = dotted_name(node) if isinstance(node, ast.Attribute) else None
            if dn is None:
                continue
            parts = dn.split(".")
            bad = None
            if (
                len(parts) >= 3
                and parts[0] in np_names
                and parts[1] == "random"
                and parts[2] not in self._ALLOWED
            ):
                bad = ".".join(parts[:3])
            elif (
                len(parts) >= 2
                and parts[0] in nprand_names
                and parts[1] not in self._ALLOWED
                and parts[0] not in np_names
            ):
                bad = ".".join(parts[:2])
            elif len(parts) >= 2 and parts[0] in stdrand_names:
                bad = ".".join(parts[:2])
            if bad is None:
                continue
            loc = (node.lineno, node.col_offset)
            if loc in seen:
                continue
            seen.add(loc)
            yield self.finding(
                module, node,
                f"`{bad}` uses hidden global RNG state; use a seeded "
                f"np.random.default_rng(seed) (rank-indexed where per-rank)",
            )


# ----------------------------------------------------------------------
class NamedValueError(Rule):
    """RL004: ``raise ValueError`` in ``src/repro`` must carry a message
    that names the offending parameter (or interpolate it).

    The campaign/service layers surface these messages verbatim in
    per-case/per-request failure records; a message that names nothing
    is undebuggable three layers up.
    """

    id = "RL004"
    slug = "named-valueerror"
    title = "ValueError messages must name the offending parameter"

    _WORD_RE = re.compile(r"[A-Za-z_][A-Za-z0-9_]*")

    def applies(self, relpath: str) -> bool:
        return relpath.startswith("src/repro/")

    def check(self, module: ParsedModule) -> Iterator[Finding]:
        class_of = self._owning_classes(module.tree)
        for fn, _ in walk_functions(module.tree):
            idents = self._identifiers(fn)
            idents.add(fn.name)
            if class_of.get(fn) is not None:
                idents.add(class_of[fn])
            for node in ast.walk(fn):
                if not isinstance(node, ast.Raise) or node.exc is None:
                    continue
                exc = node.exc
                if isinstance(exc, ast.Name) and exc.id == "ValueError":
                    yield self.finding(
                        module, node,
                        "bare `raise ValueError` without a message; name the "
                        "offending parameter",
                    )
                    continue
                if not (
                    isinstance(exc, ast.Call)
                    and isinstance(exc.func, ast.Name)
                    and exc.func.id == "ValueError"
                ):
                    continue
                if not exc.args:
                    yield self.finding(
                        module, node,
                        "`ValueError()` raised without a message; name the "
                        "offending parameter",
                    )
                    continue
                msg = exc.args[0]
                if not (isinstance(msg, ast.Constant) and isinstance(msg.value, str)):
                    continue  # f-strings / formatted messages interpolate names
                words = set(self._WORD_RE.findall(msg.value))
                expanded = words | {w + "s" for w in words} | {
                    w[:-1] for w in words if w.endswith("s")
                }
                if expanded & idents:
                    continue
                yield self.finding(
                    module, node,
                    f"ValueError message {msg.value!r} names no parameter or "
                    f"local of the enclosing function",
                )

    def _identifiers(self, fn: ast.AST) -> Set[str]:
        out = _fn_params(fn)
        for node in ast.walk(fn):
            if isinstance(node, ast.Name):
                out.add(node.id)
            elif isinstance(node, ast.Attribute):
                out.add(node.attr)
            elif isinstance(node, ast.Call):
                for kw in node.keywords:
                    if kw.arg is not None:
                        out.add(kw.arg)
        return out

    def _owning_classes(self, tree: ast.Module) -> Dict[ast.AST, Optional[str]]:
        """Map every def to the name of its nearest enclosing class."""
        out: Dict[ast.AST, Optional[str]] = {}

        def visit(node: ast.AST, cls: Optional[str]) -> None:
            for child in ast.iter_child_nodes(node):
                if isinstance(child, ast.ClassDef):
                    visit(child, child.name)
                else:
                    if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        out[child] = cls
                    visit(child, cls)

        visit(tree, None)
        return out


# ----------------------------------------------------------------------
class BroadExceptRecord(Rule):
    """RL005: a broad ``except`` must re-record the failure — capture it
    into a result/response object, log the traceback, or re-raise.
    ``except Exception: pass`` silently converts bugs into wrong data.
    (``except Exception`` already lets ``KeyboardInterrupt``/``SystemExit``
    propagate; catching ``BaseException`` without re-raising is flagged.)
    """

    id = "RL005"
    slug = "broad-except"
    title = "broad except must re-record, never swallow"

    _RECORDING_CALLS = re.compile(
        r"format_exc|print_exc|exc_info|exception|warn|capture|_capture|log"
    )

    def applies(self, relpath: str) -> bool:
        return not relpath.startswith("tests/")

    def check(self, module: ParsedModule) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            t = node.type
            broad = t is None or (
                isinstance(t, ast.Name) and t.id in ("Exception", "BaseException")
            )
            if not broad:
                continue
            label = "bare `except:`" if t is None else f"`except {t.id}:`"
            if self._body_is_noop(node.body):
                yield self.finding(
                    module, node,
                    f"{label} swallows the failure; capture it into a "
                    f"result/record (traceback.format_exc()) or re-raise",
                )
                continue
            if node.name is not None:
                if not self._name_used(node.body, node.name):
                    yield self.finding(
                        module, node,
                        f"{label} binds `{node.name}` but never records it",
                    )
                continue
            if not self._records(node.body):
                yield self.finding(
                    module, node,
                    f"{label} neither re-raises nor records the traceback; "
                    f"bind the exception or call traceback.format_exc()",
                )

    def _body_is_noop(self, body: List[ast.stmt]) -> bool:
        for stmt in body:
            if isinstance(stmt, (ast.Pass, ast.Continue, ast.Break)):
                continue
            if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Constant):
                continue
            return False
        return True

    def _name_used(self, body: List[ast.stmt], name: str) -> bool:
        for stmt in body:
            for node in ast.walk(stmt):
                if isinstance(node, ast.Name) and node.id == name:
                    return True
        return False

    def _records(self, body: List[ast.stmt]) -> bool:
        for stmt in body:
            for node in ast.walk(stmt):
                if isinstance(node, ast.Raise):
                    return True
                if isinstance(node, ast.Call):
                    dn = dotted_name(node.func)
                    if dn and self._RECORDING_CALLS.search(dn):
                        return True
        return False


# ----------------------------------------------------------------------
class HotLoopSmell(Rule):
    """RL006: per-fab / per-rank Python ``for`` loops in the measured hot
    modules.  PR 2-4 vectorized these paths; a new loop over fabs or
    ranks there is either a regression or needs a reasoned
    ``# lint: allow-loop(reason)`` (e.g. init-path, measured-faster).

    The fused batch entry points — functions or classes whose name
    matches ``fused`` (``FusedLevelPlan.advance_level``,
    ``gather_interiors``) — are recognized: their O(nfabs) gather /
    scatter loops *are* the "stack fabs" fix the rule asks for, so they
    need no annotation.
    """

    id = "RL006"
    slug = "loop"
    title = "per-fab/per-rank loop in a hot module"

    _HOT = ("src/repro/hydro/", "src/repro/amr/multifab.py",
            "src/repro/iosim/storage.py")
    _FAB_NAMES = {"mf", "mfs", "fabs", "multifab"}
    _RANK_NAMES = {"nprocs", "ranks", "nranks"}
    _FUSED_RE = re.compile(r"fused", re.I)

    def applies(self, relpath: str) -> bool:
        return any(
            relpath == h or relpath.startswith(h) for h in self._HOT
        ) and not relpath.endswith("__init__.py")

    def check(self, module: ParsedModule) -> Iterator[Finding]:
        yield from self._scan(module, module.tree, fused=False)

    def _scan(self, module: ParsedModule, node: ast.AST,
              fused: bool) -> Iterator[Finding]:
        for child in ast.iter_child_nodes(node):
            inside = fused
            if isinstance(
                child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                inside = fused or bool(self._FUSED_RE.search(child.name))
            if isinstance(child, ast.For) and not inside:
                what = self._loop_kind(child.iter)
                if what is not None:
                    yield self.finding(
                        module, child,
                        f"Python for-loop over {what} in a hot module; batch "
                        f"it (stack fabs / vectorize over ranks) or annotate "
                        f"`# lint: allow-loop(reason)`",
                    )
            yield from self._scan(module, child, inside)

    def _loop_kind(self, iter_expr: ast.AST) -> Optional[str]:
        for node in ast.walk(iter_expr):
            if isinstance(node, ast.Name):
                if node.id in self._FAB_NAMES:
                    return f"fabs (`{node.id}`)"
                if node.id in self._RANK_NAMES:
                    return f"ranks (`{node.id}`)"
            elif isinstance(node, ast.Attribute) and node.attr in ("fabs", "ranks"):
                return f"`.{node.attr}`"
        return None


# ----------------------------------------------------------------------
class WorkerClosureCapture(Rule):
    """RL007: callables shipped to multiprocessing workers must be
    module-level and must not capture shared-mutable state.

    A lambda or closure submitted to a pool either fails to pickle
    (spawn) or silently forks a *copy* of captured state (fork) — worker
    writes to an ``IOTrace``/``ResultStore``/filesystem handle never
    reach the parent.  Ship plain data and reconstruct in the worker
    (the ``_init_worker`` idiom in ``campaign/executor.py``).
    """

    id = "RL007"
    slug = "worker-capture"
    title = "pool workers must not capture shared-mutable state"

    _POOL_METHODS = {"submit", "map", "imap", "imap_unordered", "starmap",
                     "apply_async", "map_async"}
    _POOL_NAME_RE = re.compile(r"pool|executor", re.I)
    _SHARED_RE = re.compile(r"(^|_)(trace|store|fs|fh|handle)$", re.I)

    def check(self, module: ParsedModule) -> Iterator[Finding]:
        top = module_level_names(module.tree)
        nested: Dict[str, ast.AST] = {}
        for fn, enclosing in walk_functions(module.tree):
            if enclosing is not None:
                nested[fn.name] = fn
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            worker_args: List[Tuple[ast.AST, str]] = []
            if (
                isinstance(node.func, ast.Attribute)
                and node.func.attr in self._POOL_METHODS
            ):
                receiver = dotted_name(node.func.value) or ""
                if not self._POOL_NAME_RE.search(receiver):
                    continue
                if node.args:
                    worker_args.append((node.args[0], "worker function"))
                for extra in node.args[1:]:
                    worker_args.append((extra, "worker argument"))
            else:
                ctor = dotted_name(node.func) or ""
                if not ctor.endswith(("ProcessPoolExecutor", "Pool")):
                    continue
                for kw in node.keywords:
                    if kw.arg == "initializer":
                        worker_args.append((kw.value, "pool initializer"))
                    elif kw.arg == "initargs":
                        worker_args.append((kw.value, "initializer argument"))
            for expr, role in worker_args:
                yield from self._check_worker_expr(module, expr, role, top, nested)

    def _check_worker_expr(self, module, expr, role, top, nested):
        for node in ast.walk(expr):
            if isinstance(node, ast.Lambda):
                yield self.finding(
                    module, node,
                    f"lambda as {role}: unpicklable under spawn; define a "
                    f"module-level function",
                )
            elif isinstance(node, ast.Name) and node.id in nested:
                free = self._free_names(nested[node.id], top)
                if free:
                    yield self.finding(
                        module, node,
                        f"nested function `{node.id}` as {role} closes over "
                        f"{{{', '.join(sorted(free))}}}; worker state must "
                        f"travel as arguments, not captures",
                    )
            elif isinstance(node, (ast.Name, ast.Attribute)):
                dn = dotted_name(node)
                if dn is None:
                    continue
                terminal = dn.split(".")[-1]
                if self._SHARED_RE.search(terminal):
                    yield self.finding(
                        module, node,
                        f"`{dn}` shipped as {role}: worker-side writes to "
                        f"shared-mutable state (trace/store/filesystem) never "
                        f"reach the parent; pass plain data instead",
                    )

    def _free_names(self, fn: ast.AST, top: Set[str]) -> Set[str]:
        bound = _fn_params(fn)
        for node in ast.walk(fn):
            if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Store):
                bound.add(node.id)
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                bound.add(node.name)
        free: Set[str] = set()
        for node in ast.walk(fn):
            if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load):
                if node.id not in bound and node.id not in top \
                        and node.id not in _BUILTIN_NAMES:
                    free.add(node.id)
        return free


# ----------------------------------------------------------------------
class PublicApiDocstrings(Rule):
    """RL008: every ``__all__`` export of a ``src/repro`` package
    ``__init__`` must resolve to a documented def/class (constants are
    exempt), and the ``__init__`` itself must carry a module docstring —
    the package fronts are the API surface ``docs/`` links into.
    """

    id = "RL008"
    slug = "api-docstring"
    title = "public package exports need docstrings"

    def __init__(self) -> None:
        self._tree_cache: Dict[str, Optional[ast.Module]] = {}

    def applies(self, relpath: str) -> bool:
        return relpath.startswith("src/repro/") and relpath.endswith("__init__.py")

    def check(self, module: ParsedModule) -> Iterator[Finding]:
        tree = module.tree
        if ast.get_docstring(tree) is None:
            yield Finding(self.id, module.relpath, 1, 1,
                          "package __init__ has no module docstring")
        exports = self._exports(tree)
        if exports is None:
            return
        local_defs: Dict[str, ast.AST] = {}
        assigned: Set[str] = set()
        imports: Dict[str, Tuple[str, int, str]] = {}  # name -> (module, lineno, src)
        for node in tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                local_defs[node.name] = node
            elif isinstance(node, (ast.Assign, ast.AnnAssign)):
                targets = node.targets if isinstance(node, ast.Assign) else [node.target]
                for tgt in targets:
                    for sub in ast.walk(tgt):
                        if isinstance(sub, ast.Name):
                            assigned.add(sub.id)
            elif isinstance(node, ast.ImportFrom) and node.level in (0, 1, 2):
                for alias in node.names:
                    imports[alias.asname or alias.name] = (
                        node.module or "", node.lineno, alias.name
                    )
        for name, lineno in exports:
            if name in local_defs:
                if ast.get_docstring(local_defs[name]) is None:
                    yield Finding(
                        self.id, module.relpath, local_defs[name].lineno, 1,
                        f"exported `{name}` has no docstring",
                    )
            elif name in assigned:
                continue  # constants / singletons
            elif name in imports:
                src_module, imp_line, src_name = imports[name]
                missing = self._missing_docstring(module, src_module, src_name)
                if missing:
                    yield Finding(
                        self.id, module.relpath, imp_line, 1,
                        f"exported `{name}` ({missing}) has no docstring",
                    )
            else:
                yield Finding(
                    self.id, module.relpath, lineno, 1,
                    f"`__all__` lists `{name}` but nothing binds it here",
                )

    def _exports(self, tree: ast.Module) -> Optional[List[Tuple[str, int]]]:
        for node in tree.body:
            if not isinstance(node, ast.Assign):
                continue
            if not any(
                isinstance(t, ast.Name) and t.id == "__all__" for t in node.targets
            ):
                continue
            if isinstance(node.value, (ast.List, ast.Tuple)):
                out = []
                for el in node.value.elts:
                    if isinstance(el, ast.Constant) and isinstance(el.value, str):
                        out.append((el.value, el.lineno))
                return out
        return None

    def _missing_docstring(self, module: ParsedModule, src_module: str,
                           name: str) -> Optional[str]:
        """``"path:line"`` of an undocumented def/class export, else None
        (documented, a constant, or unresolvable)."""
        base = os.path.dirname(module.path)
        rel = src_module.replace(".", os.sep)
        for candidate in (
            os.path.join(base, rel + ".py"),
            os.path.join(base, rel, "__init__.py"),
        ):
            tree = self._parse(candidate)
            if tree is None:
                continue
            for node in tree.body:
                if (
                    isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                      ast.ClassDef))
                    and node.name == name
                ):
                    if ast.get_docstring(node) is None:
                        short = os.path.relpath(candidate, os.path.dirname(base))
                        return f"{short}:{node.lineno}"
                    return None
            return None  # assignment / re-export: out of scope
        return None

    def _parse(self, path: str) -> Optional[ast.Module]:
        if path not in self._tree_cache:
            tree: Optional[ast.Module] = None
            try:
                with open(path, encoding="utf-8") as fh:
                    tree = ast.parse(fh.read(), filename=path)
            except (OSError, SyntaxError, ValueError):
                tree = None
            self._tree_cache[path] = tree
        return self._tree_cache[path]


# ----------------------------------------------------------------------
class RetryableOutcome(Rule):
    """RL009: in the campaign/service layers a broad ``except`` must
    either re-raise or record a **retryable outcome** — a failure shape
    the recovery machinery can act on: an ``("err", …)`` status tuple
    (what :class:`~repro.faults.FaultPolicy` classifies for retry), an
    ``error=`` response field / ``"error"`` response key (what the
    service returns per request), or a named ``warnings.warn``.

    Stricter than RL005, which accepts any recording (``log``,
    ``print_exc``): a failure that is merely *logged* in these layers
    is invisible to the retry policy, the per-request fault capture,
    and the sweep's resilience counters — it looks handled but the case
    silently vanishes from the completion accounting.
    """

    id = "RL009"
    slug = "retryable-outcome"
    title = "broad except in campaign/service must record a retryable outcome"

    _PREFIXES = ("src/repro/campaign/", "src/repro/service/")
    # recorders that produce an actionable outcome (not just a log line)
    _OUTCOME_CALLS = re.compile(r"format_exc|warn|capture")

    def applies(self, relpath: str) -> bool:
        return relpath.startswith(self._PREFIXES)

    def check(self, module: ParsedModule) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            t = node.type
            broad = t is None or (
                isinstance(t, ast.Name) and t.id in ("Exception", "BaseException")
            )
            if not broad:
                continue
            if self._yields_outcome(node.body):
                continue
            label = "bare `except:`" if t is None else f"`except {t.id}:`"
            yield self.finding(
                module, node,
                f"{label} in the campaign/service layer neither re-raises "
                f"nor records a retryable outcome; produce an "
                f'("err", traceback.format_exc(), ...) status, an error= '
                f"response field, or a named warnings.warn so the retry/"
                f"fault-capture machinery can account for the case",
            )

    def _yields_outcome(self, body: List[ast.stmt]) -> bool:
        for stmt in body:
            for node in ast.walk(stmt):
                if isinstance(node, ast.Raise):
                    return True
                if isinstance(node, ast.Call):
                    dn = dotted_name(node.func)
                    if dn and self._OUTCOME_CALLS.search(dn):
                        return True
                    if any(kw.arg == "error" for kw in node.keywords):
                        return True
                if (isinstance(node, ast.Tuple) and node.elts
                        and isinstance(node.elts[0], ast.Constant)
                        and node.elts[0].value == "err"):
                    return True
                if isinstance(node, ast.Dict) and any(
                    isinstance(k, ast.Constant) and k.value == "error"
                    for k in node.keys
                ):
                    return True
        return False


# ----------------------------------------------------------------------
class BoundedServiceWait(Rule):
    """RL010: a serving-layer loop that waits on store or snapshot I/O
    must consult a deadline or the circuit breaker.

    The resilience contract (``docs/SERVICE.md``) is that the service
    never waits unboundedly: every store access sits behind the
    :class:`~repro.service.resilience.StoreCircuitBreaker` and every
    batch behind a :class:`~repro.service.resilience.Deadline`.  A
    ``while``/``for`` loop that sleeps, refreshes, or reads the store
    without referencing either guard is a stall waiting to happen — a
    sick store turns it into an infinite wait no budget can interrupt.

    Narrow by design: fires only in ``src/repro/service/`` and only on
    loops whose body performs a *waiting* call (``sleep``, ``refresh``,
    ``get_labeled``, snapshot save/load); referencing any
    deadline/breaker name anywhere in the loop satisfies it.
    """

    id = "RL010"
    slug = "bounded-service-wait"
    title = "service loops awaiting store/snapshot I/O must consult a deadline or breaker"

    _PREFIXES = ("src/repro/service/",)
    _WAIT_CALLS = re.compile(
        r"(?:^|\.)(?:sleep|refresh|get_labeled|save_snapshot|load_snapshot"
        r"|maybe_save|wait)$"
    )
    _GUARD_RE = re.compile(r"deadline|breaker", re.I)

    def applies(self, relpath: str) -> bool:
        return relpath.startswith(self._PREFIXES)

    def check(self, module: ParsedModule) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.While, ast.For)):
                continue
            waits = [
                dotted_name(call.func)
                for call in ast.walk(node)
                if isinstance(call, ast.Call)
            ]
            waits = [dn for dn in waits if dn and self._WAIT_CALLS.search(dn)]
            if not waits:
                continue
            if self._consults_guard(node):
                continue
            kind = "while" if isinstance(node, ast.While) else "for"
            yield self.finding(
                module, node,
                f"`{kind}` loop awaits store/snapshot I/O "
                f"({', '.join(sorted(set(waits)))}) without consulting a "
                f"deadline or the circuit breaker; thread a Deadline "
                f"(check/remaining/expired) or gate the access on "
                f"breaker.allow() so a sick store cannot stall the loop "
                f"unboundedly",
            )

    def _consults_guard(self, loop: ast.AST) -> bool:
        for node in ast.walk(loop):
            if isinstance(node, ast.Name) and self._GUARD_RE.search(node.id):
                return True
            if isinstance(node, ast.Attribute) and self._GUARD_RE.search(node.attr):
                return True
            if isinstance(node, ast.arg) and self._GUARD_RE.search(node.arg):
                return True
        return False


ALL_RULES = [
    CacheKeyCompleteness(),
    CachedBufferImmutability(),
    NoUnseededRandomness(),
    NamedValueError(),
    BroadExceptRecord(),
    HotLoopSmell(),
    WorkerClosureCapture(),
    PublicApiDocstrings(),
    RetryableOutcome(),
    BoundedServiceWait(),
]
