"""repro-lint framework: file walking, suppressions, reporting.

A *rule* is a class with an ``id`` (``RL001``...), a ``slug`` (the name
used by ``# lint: allow-<slug>(reason)`` comments), a path ``applies``
predicate, and a ``check`` method yielding :class:`Finding` objects for
one parsed module.  The framework owns everything else: collecting the
Python files under the given paths, parsing them once, matching findings
against suppression comments, and rendering the report.

Suppression syntax (reasons are mandatory — a suppression without one is
itself reported):

``# lint: allow-<slug>(<reason>)``
    Suppress one rule, by slug, on this line (or, as a standalone
    comment, on the line directly below).

``# lint: disable=RL001,RL002 (<reason>)``
    Same, by rule id(s).

``# lint: skip-file(<reason>)``
    Suppress every finding in the file (generated/corpus files).
"""

from __future__ import annotations

import ast
import io
import os
import re
import tokenize
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

__all__ = [
    "Finding",
    "ParsedModule",
    "Rule",
    "Suppression",
    "LintReport",
    "collect_files",
    "lint_paths",
    "parse_suppressions",
]


@dataclass
class Finding:
    """One rule violation at a source location."""

    rule: str
    path: str
    line: int
    col: int
    message: str
    suppressed: bool = False
    suppression_reason: Optional[str] = None

    def render(self) -> str:
        mark = " (suppressed: %s)" % self.suppression_reason if self.suppressed else ""
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}{mark}"


@dataclass
class Suppression:
    """One parsed ``# lint:`` directive."""

    line: int
    rules: Set[str]  # rule ids and/or slugs; empty set means skip-file
    reason: str
    skip_file: bool = False
    used: bool = False

    def matches(self, rule_id: str, slug: str, line: int) -> bool:
        if self.skip_file:
            return True
        # same line, or a standalone comment directly above the finding
        if line not in (self.line, self.line + 1):
            return False
        return rule_id in self.rules or slug in self.rules


class ParsedModule:
    """One source file, parsed once and shared by every rule."""

    def __init__(self, path: str, relpath: str, source: str) -> None:
        self.path = path
        self.relpath = relpath  # forward-slash path relative to the repo root
        self.source = source
        self.lines = source.splitlines()
        self.tree = ast.parse(source, filename=path)
        self.suppressions = parse_suppressions(source)


class Rule:
    """Base class: subclasses set ``id``/``slug``/``title`` and implement
    ``check``; override ``applies`` to scope the rule to a path subset."""

    id: str = "RL000"
    slug: str = "base"
    title: str = "base rule"

    def applies(self, relpath: str) -> bool:
        return True

    def check(self, module: ParsedModule) -> Iterator[Finding]:  # pragma: no cover
        raise NotImplementedError

    # -- helpers shared by rules ---------------------------------------
    def finding(self, module: ParsedModule, node: ast.AST, message: str) -> Finding:
        return Finding(
            rule=self.id,
            path=module.relpath,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            message=message,
        )


# ----------------------------------------------------------------------
# suppression comments
# ----------------------------------------------------------------------
_DIRECTIVE_RE = re.compile(r"#\s*lint:\s*(.+?)\s*$")
_ALLOW_RE = re.compile(r"allow-([a-z][a-z0-9-]*)\s*\(\s*(.*?)\s*\)\s*$")
_DISABLE_RE = re.compile(
    r"disable\s*=\s*([A-Z]{2}\d{3}(?:\s*,\s*[A-Z]{2}\d{3})*)\s*"
    r"(?:\(\s*(.*?)\s*\)|--\s*(.*?))?\s*$"
)
_SKIP_FILE_RE = re.compile(r"skip-file\s*\(\s*(.*?)\s*\)\s*$")


def _comment_tokens(source: str) -> List[Tuple[int, str]]:
    """``(lineno, text)`` for every real comment token in ``source``.

    Tokenizing (rather than regex-scanning raw lines) keeps directive
    text inside string literals and docstrings from being mistaken for
    directives.  On a tokenize error, fall back to whole-line scanning
    so suppressions still work in files ``ast.parse`` accepted.
    """
    out: List[Tuple[int, str]] = []
    try:
        for tok in tokenize.generate_tokens(io.StringIO(source).readline):
            if tok.type == tokenize.COMMENT:
                out.append((tok.start[0], tok.string))
    except (tokenize.TokenError, IndentationError):
        return [(n, line) for n, line in enumerate(source.splitlines(), start=1)]
    return out


def parse_suppressions(source: str) -> List[Suppression]:
    """All ``# lint:`` directives in a file's comments (1-indexed lines).

    Malformed directives (unknown form, missing reason) come back as a
    suppression with an empty ``rules`` set and ``reason == ""`` — the
    driver reports those as LNT000 findings instead of honoring them.
    """
    out: List[Suppression] = []
    for n, line in _comment_tokens(source):
        m = _DIRECTIVE_RE.search(line)
        if m is None:
            continue
        directive = m.group(1)
        allow = _ALLOW_RE.match(directive)
        if allow is not None:
            out.append(Suppression(n, {allow.group(1)}, allow.group(2)))
            continue
        disable = _DISABLE_RE.match(directive)
        if disable is not None:
            rules = {r.strip() for r in disable.group(1).split(",")}
            reason = disable.group(2) or disable.group(3) or ""
            out.append(Suppression(n, rules, reason))
            continue
        skip = _SKIP_FILE_RE.match(directive)
        if skip is not None:
            out.append(Suppression(n, set(), skip.group(1), skip_file=True))
            continue
        out.append(Suppression(n, set(), ""))  # malformed
    return out


# ----------------------------------------------------------------------
# driver
# ----------------------------------------------------------------------
_SKIP_DIRS = {"__pycache__", ".git", "output", ".pytest_cache"}


def collect_files(paths: Iterable[str], root: str) -> List[str]:
    """Every ``*.py`` file under ``paths`` (files pass through), sorted."""
    found: List[str] = []
    for p in paths:
        ap = p if os.path.isabs(p) else os.path.join(root, p)
        if os.path.isfile(ap):
            found.append(ap)
            continue
        for dirpath, dirnames, filenames in os.walk(ap):
            dirnames[:] = sorted(d for d in dirnames if d not in _SKIP_DIRS)
            for name in sorted(filenames):
                if name.endswith(".py"):
                    found.append(os.path.join(dirpath, name))
    return found


@dataclass
class LintReport:
    """Everything one lint run produced."""

    findings: List[Finding] = field(default_factory=list)
    parse_errors: List[str] = field(default_factory=list)
    n_files: int = 0
    unused_suppressions: List[str] = field(default_factory=list)

    @property
    def active(self) -> List[Finding]:
        return [f for f in self.findings if not f.suppressed]

    @property
    def suppressed(self) -> List[Finding]:
        return [f for f in self.findings if f.suppressed]

    @property
    def ok(self) -> bool:
        return not self.active and not self.parse_errors


def _apply_suppressions(module: ParsedModule, rule: Rule,
                        findings: List[Finding]) -> None:
    for f in findings:
        for sup in module.suppressions:
            if not sup.reason:
                continue  # malformed/empty-reason directives never suppress
            if sup.matches(rule.id, rule.slug, f.line):
                f.suppressed = True
                f.suppression_reason = sup.reason
                sup.used = True
                break


def lint_paths(
    paths: Sequence[str],
    rules: Sequence[Rule],
    root: Optional[str] = None,
    select: Optional[Set[str]] = None,
) -> LintReport:
    """Run ``rules`` over every Python file under ``paths``."""
    root = root or os.getcwd()
    report = LintReport()
    active_rules = [r for r in rules if select is None or r.id in select]
    for path in collect_files(paths, root):
        relpath = os.path.relpath(path, root).replace(os.sep, "/")
        try:
            with open(path, encoding="utf-8") as fh:
                module = ParsedModule(path, relpath, fh.read())
        except (OSError, SyntaxError, ValueError) as exc:
            report.parse_errors.append(f"{relpath}: {exc}")
            continue
        report.n_files += 1
        for sup in module.suppressions:
            if not sup.reason:
                report.findings.append(Finding(
                    rule="LNT000", path=relpath, line=sup.line, col=1,
                    message="malformed lint directive or missing reason "
                            "(use `# lint: allow-<slug>(reason)`)",
                ))
        for rule in active_rules:
            if not rule.applies(relpath):
                continue
            found = list(rule.check(module))
            _apply_suppressions(module, rule, found)
            report.findings.extend(found)
        for sup in module.suppressions:
            if sup.reason and not sup.used:
                report.unused_suppressions.append(
                    f"{relpath}:{sup.line}: suppression for "
                    f"{','.join(sorted(sup.rules)) or 'file'} never matched a finding"
                )
    report.findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return report


# ----------------------------------------------------------------------
# small AST utilities shared by the rules
# ----------------------------------------------------------------------
def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, None for anything else."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def walk_functions(tree: ast.AST) -> Iterator[Tuple[ast.AST, Optional[ast.AST]]]:
    """Yield ``(function, nearest_enclosing_function_or_None)`` for every def."""
    stack: List[Tuple[ast.AST, Optional[ast.AST]]] = [(tree, None)]
    while stack:
        node, enclosing = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            enclosing = node
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield child, enclosing
            stack.append((child, enclosing))


def module_level_names(tree: ast.Module) -> Set[str]:
    """Names bound at module top level (imports, defs, assignments)."""
    names: Set[str] = set()
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            names.add(node.name)
        elif isinstance(node, ast.Import):
            for alias in node.names:
                names.add((alias.asname or alias.name).split(".")[0])
        elif isinstance(node, ast.ImportFrom):
            for alias in node.names:
                names.add(alias.asname or alias.name)
        elif isinstance(node, ast.Assign):
            for tgt in node.targets:
                for sub in ast.walk(tgt):
                    if isinstance(sub, ast.Name):
                        names.add(sub.id)
        elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
            names.add(node.target.id)
    return names
