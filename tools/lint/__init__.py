"""repro-lint: project-specific static analysis for the repro codebase.

Run as ``python -m tools.lint src tests benchmarks`` (or ``make lint``).
The rule catalog lives in :mod:`tools.lint.rules` and is documented in
``docs/LINT.md``; the AST framework and suppression syntax live in
:mod:`tools.lint.framework`.  Programmatic use::

    from tools.lint import ALL_RULES, lint_paths
    report = lint_paths(["src"], ALL_RULES, root="/path/to/repo")
    assert report.ok, [f.render() for f in report.active]
"""

from .framework import (
    Finding,
    LintReport,
    ParsedModule,
    Rule,
    Suppression,
    collect_files,
    lint_paths,
    parse_suppressions,
)
from .rules import ALL_RULES

__all__ = [
    "ALL_RULES",
    "Finding",
    "LintReport",
    "ParsedModule",
    "Rule",
    "Suppression",
    "collect_files",
    "lint_paths",
    "parse_suppressions",
]
