#!/usr/bin/env python
"""bench-smoke: tiny-size run of every benchmark, artifact-checked.

Runs the full ``benchmarks/bench_*.py`` suite with ``REPRO_BENCH_SMOKE=1``
(the expensive benches shrink to harness checks — see the ``smoke``
fixture in ``benchmarks/conftest.py``) and ``REPRO_SANITIZE=1`` (the
runtime sanitizer of ``repro.sanitize`` soaks the cache/plan paths with
frozen buffers and checksummed replays), then asserts that every artifact
a bench declares via a literal ``emit("name", ...)`` call (plus the
``BENCH_*.json`` timing artifacts) was freshly written to
``benchmarks/output/``.  Catches bench-harness regressions — a bench
that stops emitting, a JSON artifact that stops parsing — without the
full bench cost.

Smoke runs write their JSON artifacts to ``BENCH_*_smoke.json`` (the
``bench_json`` fixture), so the checked-in full-size ``BENCH_*.json``
files — whose speedup floors only hold at full size — are never
clobbered by a tiny-size run.  This script enforces both sides: the
``_smoke`` variant must be fresh, and the full-size artifact must still
exist untouched.

Run via ``make bench-smoke`` or::

    PYTHONPATH=src python tools/bench_smoke.py
"""

from __future__ import annotations

import json
import os
import re
import subprocess
import sys
import time
from typing import Dict, List

ROOT = os.path.abspath(os.path.join(os.path.dirname(__file__), os.pardir))
BENCH_DIR = os.path.join(ROOT, "benchmarks")
OUTPUT_DIR = os.path.join(BENCH_DIR, "output")

EMIT_RE = re.compile(r'emit\(\s*f?"([\w.-]+)"')
JSON_RE = re.compile(r'BENCH_PATH\s*=\s*os\.path\.join\(OUTPUT_DIR,\s*"([\w.-]+\.json)"')

# Timing artifacts the suite must always declare — a rename or deleted
# bench can't silently drop one from coverage.
REQUIRED_JSON = {
    "BENCH_trace.json",
    "BENCH_campaign.json",
    "BENCH_solver.json",
    "BENCH_dump.json",
    "BENCH_platforms.json",
    "BENCH_service.json",
    "BENCH_resilience.json",
    "BENCH_service_resilience.json",
}

# Measured columns the payloads must carry — a refactor that silently
# drops one fails here, not after an expensive full-size run.
REQUIRED_FIELDS = {
    "BENCH_solver.json": lambda p: all(
        "fused_speedup" in row for row in p.get("rows", [])
    ) and bool(p.get("rows")),
    "BENCH_trace.json": lambda p: "spill_maxrss_mb" in p.get("spill", {})
    and all("append_speedup" in row for row in p.get("rows", []))
    and bool(p.get("rows")),
}


def smoke_name(artifact: str) -> str:
    """The path a smoke run actually writes: ``BENCH_*_smoke.json`` for
    JSON artifacts (kept in lockstep with ``conftest.smoke_artifact_path``),
    the artifact itself otherwise."""
    if artifact.endswith(".json"):
        root, ext = os.path.splitext(artifact)
        return root + "_smoke" + ext
    return artifact


def expected_artifacts() -> Dict[str, List[str]]:
    """bench file -> artifact filenames declared by literal emit calls."""
    out: Dict[str, List[str]] = {}
    for name in sorted(os.listdir(BENCH_DIR)):
        if not (name.startswith("bench_") and name.endswith(".py")):
            continue
        with open(os.path.join(BENCH_DIR, name), encoding="utf-8") as fh:
            text = fh.read()
        artifacts = [f"{m}.txt" for m in EMIT_RE.findall(text)]
        artifacts += JSON_RE.findall(text)
        out[name] = sorted(set(artifacts))
    return out


def main() -> int:
    expected = expected_artifacts()
    declared = {a for artifacts in expected.values() for a in artifacts}
    missing_required = sorted(REQUIRED_JSON - declared)
    if missing_required:
        for name in missing_required:
            print(f"bench-smoke: no bench declares required artifact {name}",
                  file=sys.stderr)
        return 1
    start = time.time()
    # REPRO_SANITIZE: the smoke pass doubles as a sanitizer soak — every
    # bench's cache/plan traffic runs with frozen buffers and checksummed
    # replays (full-size runs stay unsanitized so timings are honest).
    env = dict(os.environ, REPRO_BENCH_SMOKE="1", REPRO_SANITIZE="1")
    env["PYTHONPATH"] = os.path.join(ROOT, "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    proc = subprocess.run(
        [sys.executable, "-m", "pytest", "benchmarks", "-q",
         "-o", "python_files=bench_*.py", "-p", "no:cacheprovider"],
        cwd=ROOT, env=env,
    )
    if proc.returncode != 0:
        print("bench-smoke: pytest failed", file=sys.stderr)
        return proc.returncode

    errors: List[str] = []
    for bench, artifacts in expected.items():
        if not artifacts:
            errors.append(f"{bench}: declares no emit(...) artifact")
        for artifact in artifacts:
            written = smoke_name(artifact)
            path = os.path.join(OUTPUT_DIR, written)
            if not os.path.exists(path):
                errors.append(f"{bench}: artifact {written} missing")
                continue
            if os.path.getmtime(path) < start:
                errors.append(f"{bench}: artifact {written} not rewritten by this run")
            elif written.endswith(".json"):
                try:
                    with open(path, encoding="utf-8") as fh:
                        payload = json.load(fh)
                except ValueError as exc:
                    errors.append(f"{bench}: artifact {written} is not valid JSON: {exc}")
                else:
                    field_check = REQUIRED_FIELDS.get(artifact)
                    if field_check is not None and not field_check(payload):
                        errors.append(
                            f"{bench}: artifact {written} is missing a "
                            "required measured field (see REQUIRED_FIELDS)")
            if written == artifact:
                continue
            # the full-size artifact must survive the smoke run untouched
            full = os.path.join(OUTPUT_DIR, artifact)
            if not os.path.exists(full):
                errors.append(
                    f"{bench}: full-size artifact {artifact} missing "
                    f"(run the full bench to regenerate it)")
            elif os.path.getmtime(full) >= start:
                errors.append(
                    f"{bench}: smoke run overwrote full-size artifact {artifact}")
    if errors:
        for err in errors:
            print(f"bench-smoke: {err}", file=sys.stderr)
        print(f"bench-smoke: {len(errors)} error(s)", file=sys.stderr)
        return 1
    n = sum(len(a) for a in expected.values())
    print(f"bench-smoke OK ({len(expected)} benches, {n} artifacts)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
