"""Developer tooling (not shipped with the ``repro`` package).

``tools.lint`` is the project's static analyzer (``python -m tools.lint``);
``bench_smoke.py`` and ``docs_check.py`` are standalone CI scripts.
"""
