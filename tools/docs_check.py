#!/usr/bin/env python
"""docs-check: fail if the docs reference things that don't exist.

Scans markdown files (README.md, docs/*.md) and verifies that

* every ``import repro...`` / ``from repro... import name`` in a fenced
  code block actually imports,
* every dotted ``repro.foo.bar`` inline-code reference resolves to a
  module or module attribute,
* every ``--flag`` shown next to a ``repro-*`` command (or ``*_main``
  call) exists in that command's argparse ``--help``, and every bare
  ``--flag`` inline span exists in at least one command,
* every referenced repo path (``examples/...``, ``benchmarks/...``, ...)
  and every local markdown link target exists on disk.

Run via ``make docs-check`` or::

    PYTHONPATH=src python tools/docs_check.py README.md docs/*.md
"""

from __future__ import annotations

import importlib
import io
import os
import re
import sys
from contextlib import redirect_stderr, redirect_stdout
from typing import Dict, List

ROOT = os.path.abspath(os.path.join(os.path.dirname(__file__), os.pardir))
sys.path.insert(0, os.path.join(ROOT, "src"))

# prog name -> (module, function) for --help introspection
PROGS = {
    "repro-sedov": ("repro.cli", "sedov_main"),
    "repro-macsio": ("repro.cli", "macsio_main"),
    "repro-model": ("repro.cli", "model_main"),
    "repro-campaign": ("repro.cli", "campaign_main"),
    "repro-serve": ("repro.cli", "serve_main"),
}
_FUNC_TO_PROG = {func: prog for prog, (_, func) in PROGS.items()}

# repo-relative path prefixes worth checking; benchmarks/output is generated
PATH_RE = re.compile(r"\b(?:examples|benchmarks|docs|src|tools|tests)/[\w./-]*\w")
GENERATED_PREFIXES = ("benchmarks/output/",)

FENCE_RE = re.compile(r"```[\w]*\n(.*?)```", re.S)
INLINE_RE = re.compile(r"`([^`\n]+)`")
IMPORT_FROM_RE = re.compile(r"from\s+(repro[\w.]*)\s+import\s+(\w+(?:\s*,\s*\w+)*)")
IMPORT_RE = re.compile(r"(?<!from )\bimport\s+(repro[\w.]*)")
DOTTED_RE = re.compile(r"repro(?:\.\w+)+")
FLAG_RE = re.compile(r"(?<![\w-])--[a-zA-Z][\w-]*")
LINK_RE = re.compile(r"\]\(([^)\s]+)\)")


def _resolve_dotted(dotted: str) -> None:
    """Import ``a.b.c`` as a module, or module + attribute chain."""
    parts = dotted.split(".")
    for split in range(len(parts), 0, -1):
        modname = ".".join(parts[:split])
        try:
            obj = importlib.import_module(modname)
        except ImportError:
            continue
        for attr in parts[split:]:
            obj = getattr(obj, attr)  # AttributeError -> caller reports
        return
    raise ImportError(f"no importable prefix of {dotted!r}")


_help_cache: Dict[str, str] = {}


def _help_text(prog: str) -> str:
    if prog not in _help_cache:
        module, func = PROGS[prog]
        main = getattr(importlib.import_module(module), func)
        buf = io.StringIO()
        try:
            with redirect_stdout(buf), redirect_stderr(buf):
                main(["--help"])
        except SystemExit:
            pass
        _help_cache[prog] = buf.getvalue()
    return _help_cache[prog]


def _progs_on_line(line: str) -> List[str]:
    found = [prog for prog in PROGS if prog in line]
    found += [_FUNC_TO_PROG[f] for f in _FUNC_TO_PROG if f + "(" in line]
    return found


def check_file(md_path: str, errors: List[str]) -> None:
    rel = os.path.relpath(md_path, ROOT)
    with open(md_path, encoding="utf-8") as fh:
        text = fh.read()

    blocks = FENCE_RE.findall(text)
    spans = INLINE_RE.findall(FENCE_RE.sub("", text))
    code_lines = [ln for block in blocks for ln in block.splitlines()] + spans

    # -- imports inside fenced blocks ---------------------------------
    for block in blocks:
        for m in IMPORT_FROM_RE.finditer(block):
            module, names = m.group(1), [n.strip() for n in m.group(2).split(",")]
            try:
                mod = importlib.import_module(module)
                for name in names:
                    getattr(mod, name)
            except (ImportError, AttributeError) as exc:
                errors.append(f"{rel}: `from {module} import {', '.join(names)}`: {exc}")
        for m in IMPORT_RE.finditer(block):
            try:
                importlib.import_module(m.group(1))
            except ImportError as exc:
                errors.append(f"{rel}: `import {m.group(1)}`: {exc}")

    # -- dotted repro.* references in inline code ---------------------
    for span in spans:
        for dotted in DOTTED_RE.findall(span):
            try:
                _resolve_dotted(dotted)
            except (ImportError, AttributeError) as exc:
                errors.append(f"{rel}: `{dotted}` does not resolve: {exc}")

    # -- CLI flags ----------------------------------------------------
    for line in code_lines:
        progs = _progs_on_line(line)
        flags = FLAG_RE.findall(line)
        if not flags or flags == ["--help"]:
            continue
        if progs:
            for flag in flags:
                if not any(flag in _help_text(p) for p in progs):
                    errors.append(f"{rel}: flag {flag} not accepted by {'/'.join(progs)}"
                                  f" (line: {line.strip()!r})")
        elif line.strip().startswith("--"):
            # bare flag span (e.g. an option table): any repro CLI may own it
            flag = flags[0]
            if not any(flag in _help_text(p) for p in PROGS):
                errors.append(f"{rel}: flag {flag} not accepted by any repro command")

    # -- repo paths in code -------------------------------------------
    for line in code_lines:
        for path in PATH_RE.findall(line):
            if path.startswith(GENERATED_PREFIXES):
                continue
            if not os.path.exists(os.path.join(ROOT, path)):
                errors.append(f"{rel}: referenced path {path!r} does not exist")

    # -- local markdown link targets ----------------------------------
    for target in LINK_RE.findall(text):
        if target.startswith(("http://", "https://", "mailto:", "#")):
            continue
        resolved = os.path.join(os.path.dirname(md_path), target.split("#", 1)[0])
        if not os.path.exists(resolved):
            errors.append(f"{rel}: broken link {target!r}")


def main(argv: List[str]) -> int:
    files = argv or [os.path.join(ROOT, "README.md")]
    errors: List[str] = []
    for path in files:
        if not os.path.exists(path):
            errors.append(f"doc file missing: {path}")
            continue
        check_file(os.path.abspath(path), errors)
    if errors:
        for err in errors:
            print(f"docs-check: {err}", file=sys.stderr)
        print(f"docs-check: {len(errors)} error(s)", file=sys.stderr)
        return 1
    print(f"docs-check OK ({len(files)} file(s))")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
