import os
import re

from setuptools import find_packages, setup

HERE = os.path.abspath(os.path.dirname(__file__))

with open(os.path.join(HERE, "README.md"), encoding="utf-8") as fh:
    long_description = fh.read()

# single-source the version without importing the package (import needs numpy)
with open(os.path.join(HERE, "src", "repro", "__init__.py"), encoding="utf-8") as fh:
    version = re.search(r'^__version__ = "([^"]+)"', fh.read(), re.M).group(1)

setup(
    name="repro-amr-io",
    version=version,
    description=(
        "Reproduction of 'Modeling pre-Exascale AMR Parallel I/O Workloads "
        "via Proxy Applications' (Godoy, Delozier, Watson; IPDPSW 2022)"
    ),
    long_description=long_description,
    long_description_content_type="text/markdown",
    author="paper-repo-growth",
    license="MIT",
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.9",
    install_requires=[
        "numpy>=1.22",
        "scipy>=1.8",
    ],
    entry_points={
        "console_scripts": [
            "repro-sedov=repro.cli:sedov_main",
            "repro-macsio=repro.cli:macsio_main",
            "repro-model=repro.cli:model_main",
            "repro-campaign=repro.cli:campaign_main",
            "repro-serve=repro.cli:serve_main",
        ]
    },
    classifiers=[
        "Development Status :: 4 - Beta",
        "Intended Audience :: Science/Research",
        "License :: OSI Approved :: MIT License",
        "Programming Language :: Python :: 3",
        "Programming Language :: Python :: 3 :: Only",
        "Topic :: Scientific/Engineering :: Physics",
        "Topic :: System :: Distributed Computing",
    ],
)
